// Package store is the disk tier of the content-addressed result cache: a
// persistent key/value store that survives restarts and is shared by every
// manager that opens the same directory. The serve layer stacks it under
// its in-RAM LRU, and a fleet coordinator consults one as the fleet-wide
// tier before dispatching a cell to any worker.
//
// Safety model. Every value is keyed by a hash of the full input
// description that produced it (serve.Key), so persistence is safe by
// construction: whatever a stored entry holds is byte-for-byte what a
// fresh simulation of that key would produce, however old the file is.
// The store therefore never needs expiry or coherence — only integrity —
// and integrity is local to each entry:
//
//   - writes are atomic: the entry is written to a temp file in the store
//     directory, fsynced, and renamed into place, so a crash (kill -9
//     included) leaves either the complete entry or no entry;
//   - every entry file carries a header with a magic tag, the store
//     format version, its key, and a CRC of the value; Open re-validates
//     all of it and deletes anything torn, truncated, alien, or written
//     by a different format version — a dropped entry is recomputed on
//     the next request, never served corrupt;
//   - leftover temp files from interrupted writes are swept on Open.
//
// Eviction is sized in bytes, not entries: Options.MaxBytes budgets the
// sum of entry file sizes, and Put evicts least-recently-used entries
// until the budget holds. Recency survives restarts through an
// append-only access log of entry touches, replayed (and compacted) on
// Open; the log is advisory — losing its tail to a crash costs eviction
// precision, never correctness.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// FormatVersion is the on-disk entry format's version. serve.Key folds it
// into every key's hash preimage, so bumping it atomically invalidates
// both tiers of every deployed cache: old entry files fail Open's version
// check and are deleted, and old RAM/disk keys can never collide with new
// ones. Bump it whenever the encoding of any stored result changes shape
// in a way the JSON field set alone would not reveal.
const FormatVersion = 1

// DefaultMaxBytes is the default byte budget: far above the full figure
// corpus (the complete default-sampling sweep, attack matrix, and gadget
// census marshal to a few MB), small enough to stay polite on a shared
// disk.
const DefaultMaxBytes = 1 << 30

// Options tunes an opened store.
type Options struct {
	// MaxBytes budgets the total size of entry files (headers included).
	// Put evicts least-recently-used entries beyond it. <= 0 selects
	// DefaultMaxBytes.
	MaxBytes int64
}

const (
	entrySuffix = ".cell"
	tmpPrefix   = "tmp-"
	logName     = "access.log"
	logTmpName  = "access.log.tmp"

	// headerLen is magic(4) + version(4) + keyLen(4) + valLen(4) + crc(4).
	headerLen = 20
)

var magic = [4]byte{'N', 'D', 'S', 'T'}

// Store is one opened store directory. All methods are safe for
// concurrent use; Get and Put are best-effort on I/O errors (a failed
// read is a miss, a failed write is an uncached value), because the tier
// above always knows how to recompute.
type Store struct {
	dir string
	max int64

	mu      sync.Mutex
	entries map[string]*entry // by key
	byName  map[string]*entry // by entry file base name
	gen     uint64            // logical clock: bumped per touch, highest = most recent
	bytes   int64             // sum of entry file sizes
	log     *os.File          // append-only touch log
	logLen  int               // touch lines since the last compaction

	hits          atomic.Int64
	misses        atomic.Int64
	puts          atomic.Int64
	putErrors     atomic.Int64
	evictions     atomic.Int64
	evictedBytes  atomic.Int64
	droppedOnOpen atomic.Int64
}

type entry struct {
	key  string
	name string // file base name
	line string // precomputed access-log line (name + newline)
	size int64  // full entry file size
	gen  uint64
}

// Counters is a point-in-time snapshot of the store's accounting, sized
// for /metrics: gauges for the live set, counters for lifetime traffic.
type Counters struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	MaxBytes      int64 `json:"max_bytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Puts          int64 `json:"puts"`
	PutErrors     int64 `json:"put_errors"`
	Evictions     int64 `json:"evictions"`
	EvictedBytes  int64 `json:"evicted_bytes"`
	DroppedOnOpen int64 `json:"dropped_on_open"`
}

// entryName is the content address on disk: a fixed-width hex prefix of
// the key's SHA-256. The key itself is stored in the entry header, so a
// (cosmically unlikely) prefix collision reads as a key mismatch and is
// treated as a miss rather than served wrong.
func entryName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16]) + entrySuffix
}

// Open loads (or creates) the store at dir: it sweeps temp files from
// interrupted writes, validates every entry file (deleting torn or
// version-mismatched ones), replays the access log to restore recency
// order, rewrites the log compacted, and enforces the byte budget.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		max:     opts.MaxBytes,
		entries: make(map[string]*entry),
		byName:  make(map[string]*entry),
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// ReadDir sorts by name, so initial generations (before the access
	// log refines them) are deterministic across opens.
	for _, de := range names {
		name := de.Name()
		switch {
		case de.IsDir():
			continue
		case strings.HasPrefix(name, tmpPrefix) || name == logTmpName:
			// A temp file is an interrupted write: its entry was never
			// visible, so removing it loses nothing.
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, entrySuffix):
			s.loadEntry(name)
		}
	}
	s.replayLog()
	if err := s.compactLog(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	//ndavet:allow locklint:transitive Open-time eviction runs before the store is shared; no contenders exist yet
	s.evictOverLocked("")
	s.mu.Unlock()
	return s, nil
}

// loadEntry validates one entry file during Open, indexing it if sound
// and deleting it otherwise. Called before the store is shared, but takes
// the lock anyway to keep evictOverLocked's invariants in one place.
func (s *Store) loadEntry(name string) {
	path := filepath.Join(s.dir, name)
	key, _, size, err := readEntry(path)
	if err != nil {
		_ = os.Remove(path)
		s.droppedOnOpen.Add(1)
		return
	}
	if _, dup := s.entries[key]; dup {
		// Two files claiming one key can only come from manual tampering;
		// keep the first (ReadDir order) and drop the newcomer.
		_ = os.Remove(path)
		s.droppedOnOpen.Add(1)
		return
	}
	s.gen++
	e := &entry{key: key, name: name, line: name + "\n", size: size, gen: s.gen}
	s.entries[key] = e
	s.byName[name] = e
	s.bytes += size
}

// readEntry reads and fully validates one entry file, returning its key,
// value, and total file size.
func readEntry(path string) (key string, val []byte, size int64, err error) {
	//ndavet:allow ctxlint:noctx one bounded local file read; cancellation is handled at the job layer, not per syscall
	b, err := os.ReadFile(path)
	if err != nil {
		return "", nil, 0, err
	}
	if len(b) < headerLen || [4]byte(b[:4]) != magic {
		return "", nil, 0, fmt.Errorf("store: %s: bad magic or truncated header", path)
	}
	version := binary.LittleEndian.Uint32(b[4:8])
	keyLen := binary.LittleEndian.Uint32(b[8:12])
	valLen := binary.LittleEndian.Uint32(b[12:16])
	crc := binary.LittleEndian.Uint32(b[16:20])
	if version != FormatVersion {
		return "", nil, 0, fmt.Errorf("store: %s: format version %d, want %d", path, version, FormatVersion)
	}
	if uint64(len(b)) != headerLen+uint64(keyLen)+uint64(valLen) {
		return "", nil, 0, fmt.Errorf("store: %s: torn entry (%d bytes, header claims %d)", path, len(b), headerLen+keyLen+valLen)
	}
	key = string(b[headerLen : headerLen+keyLen])
	val = b[headerLen+keyLen:]
	if crc32.ChecksumIEEE(val) != crc {
		return "", nil, 0, fmt.Errorf("store: %s: value checksum mismatch", path)
	}
	return key, val, int64(len(b)), nil
}

// encodeEntry builds the on-disk bytes for one entry.
func encodeEntry(key string, val []byte) []byte {
	b := make([]byte, headerLen+len(key)+len(val))
	copy(b[:4], magic[:])
	binary.LittleEndian.PutUint32(b[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(b[8:12], uint32(len(key)))
	binary.LittleEndian.PutUint32(b[12:16], uint32(len(val)))
	binary.LittleEndian.PutUint32(b[16:20], crc32.ChecksumIEEE(val))
	copy(b[headerLen:], key)
	copy(b[headerLen+len(key):], val)
	return b
}

// replayLog re-applies the access log's touch order on top of the
// directory-scan order: each line is an entry file name, oldest touch
// first. Unknown names (evicted entries) and a torn final line are
// skipped — the log is advisory.
func (s *Store) replayLog() {
	b, err := os.ReadFile(filepath.Join(s.dir, logName))
	if err != nil {
		return
	}
	lines := strings.Split(string(b), "\n")
	if len(lines) > 0 && lines[len(lines)-1] != "" {
		lines = lines[:len(lines)-1] // torn tail: the write died mid-line
	}
	for _, name := range lines {
		if e, ok := s.byName[name]; ok {
			s.gen++
			e.gen = s.gen
		}
	}
}

// compactLog atomically rewrites the access log as one line per live
// entry in recency order and reopens it for appending.
func (s *Store) compactLog() error {
	if s.log != nil {
		_ = s.log.Close()
		s.log = nil
	}
	live := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		live = append(live, e)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].gen < live[j].gen })
	var b strings.Builder
	for _, e := range live {
		b.WriteString(e.name)
		b.WriteByte('\n')
	}
	tmp := filepath.Join(s.dir, logTmpName)
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, logName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(s.dir, logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.log = f
	s.logLen = 0
	return nil
}

// touchLocked bumps an entry to most-recent and appends the touch to the
// log, compacting when the log has grown well past the live set.
func (s *Store) touchLocked(e *entry) {
	s.gen++
	e.gen = s.gen
	if s.log != nil {
		if _, err := s.log.WriteString(e.line); err == nil {
			s.logLen++
		}
	}
	if s.logLen > 8*len(s.entries)+64 {
		_ = s.compactLog()
	}
}

// Get returns the stored value for key. A missing, unreadable, or
// corrupted entry is a miss (and a corrupted one is deleted); the caller
// recomputes and Puts.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	//ndavet:allow locklint:transitive the store is single-writer by design (PR 8): reads serialize with eviction under one mutex so index and files stay atomic
	gotKey, val, _, err := readEntry(filepath.Join(s.dir, e.name))
	if err != nil || gotKey != key {
		// The file went bad underneath us (or a hash-prefix collision):
		// drop it so the slot recomputes cleanly.
		//ndavet:allow locklint:transitive corrupt-entry removal must stay atomic with the index update that hides it
		s.removeLocked(e, false)
		s.misses.Add(1)
		return nil, false
	}
	//ndavet:allow locklint:transitive the LRU touch appends to the access log under the same mutex that orders it
	s.touchLocked(e)
	s.hits.Add(1)
	return val, true
}

// Has reports whether key is present without reading the entry, touching
// recency, or counting a hit or miss — an admission probe, not a lookup.
// A later Get can still miss (the file may have gone bad underneath), so
// callers treating Has as a promise must tolerate a recompute.
//
//ndavet:hotpath
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put stores val under key. The write is atomic (temp file + fsync +
// rename), idempotent (an existing entry is only touched — values are
// content-addressed, so rewriting could change nothing), and best-effort:
// an I/O failure counts on PutErrors and the value simply stays uncached.
func (s *Store) Put(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		//ndavet:allow locklint:transitive the LRU touch appends to the access log under the same mutex that orders it
		s.touchLocked(e)
		return
	}
	name := entryName(key)
	b := encodeEntry(key, val)
	//ndavet:allow locklint:transitive writeAtomic must complete before the index entry becomes visible; the mutex is what makes Put atomic
	if err := s.writeAtomic(name, b); err != nil {
		s.putErrors.Add(1)
		return
	}
	s.gen++
	e := &entry{key: key, name: name, line: name + "\n", size: int64(len(b)), gen: s.gen}
	s.entries[key] = e
	s.byName[name] = e
	s.bytes += e.size
	if s.log != nil {
		//ndavet:allow locklint:lexical the log append must be ordered with the index insert it records
		if _, err := s.log.WriteString(e.line); err == nil {
			s.logLen++
		}
	}
	s.puts.Add(1)
	//ndavet:allow locklint:transitive eviction must be atomic with the insert that pushed the store over budget
	s.evictOverLocked(key)
}

// writeAtomic lands b at name via temp file, fsync, rename, and a
// best-effort directory sync, so a crash at any point leaves either the
// whole entry or a temp file Open will sweep.
func (s *Store) writeAtomic(name string, b []byte) error {
	f, err := os.CreateTemp(s.dir, tmpPrefix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// evictOverLocked deletes least-recently-used entries until the byte
// budget holds. keep, when non-empty, shields the entry just written —
// unless it alone exceeds the whole budget, in which case it goes too
// (a value bigger than the store must not wedge it permanently over).
func (s *Store) evictOverLocked(keep string) {
	for s.bytes > s.max && len(s.entries) > 0 {
		var victim *entry
		for _, e := range s.entries {
			if e.key == keep && len(s.entries) > 1 {
				continue
			}
			if victim == nil || e.gen < victim.gen {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		s.removeLocked(victim, true)
	}
}

// removeLocked deletes one entry's file and index state.
func (s *Store) removeLocked(e *entry, evicted bool) {
	_ = os.Remove(filepath.Join(s.dir, e.name))
	delete(s.entries, e.key)
	delete(s.byName, e.name)
	s.bytes -= e.size
	if evicted {
		s.evictions.Add(1)
		s.evictedBytes.Add(e.size)
	}
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the total size of live entry files.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Counters snapshots the store's accounting.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	entries, bytes := len(s.entries), s.bytes
	s.mu.Unlock()
	return Counters{
		Entries:       entries,
		Bytes:         bytes,
		MaxBytes:      s.max,
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Puts:          s.puts.Load(),
		PutErrors:     s.putErrors.Load(),
		Evictions:     s.evictions.Load(),
		EvictedBytes:  s.evictedBytes.Load(),
		DroppedOnOpen: s.droppedOnOpen.Load(),
	}
}

// Close releases the access log handle. Durability never depends on
// Close: every Put is already synced and renamed into place, which is
// what makes kill -9 survivable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}
