package trace

import (
	"strings"
	"testing"

	"nda/internal/asm"
	"nda/internal/core"
	"nda/internal/ooo"
)

func collect(t *testing.T, src string, pol core.Policy, limit int) *Collector {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := ooo.NewFromProgram(p, pol, ooo.DefaultParams())
	col := &Collector{Limit: limit}
	col.Attach(c)
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return col
}

const prog = `
        .data
        .org 0x100000
buf:    .word64 1, 2, 3, 4
        .text
main:   li   s0, 0x100000
        ld   t0, (s0)
        add  t1, t0, t0
        ld   t2, 8(s0)
        add  t3, t2, t1
        halt
`

func TestCollectAndRender(t *testing.T) {
	col := collect(t, prog, core.Baseline(), 0)
	if len(col.Records) != 6 {
		t.Fatalf("got %d records", len(col.Records))
	}
	out := col.Render(120)
	if !strings.Contains(out, "pipeline trace: 6 instructions") {
		t.Errorf("header missing:\n%s", out)
	}
	for _, want := range []string{"F", "D", "I", "C", "R", "ld x5, 0(x8)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Milestones must be ordered for every record.
	for _, r := range col.Records {
		if !(r.Fetch <= r.Dispatch && r.Dispatch <= r.Issue && r.Issue < r.Complete && r.Complete <= r.Retire) {
			t.Errorf("milestones out of order: %+v", r)
		}
	}
}

func TestLimit(t *testing.T) {
	col := collect(t, prog, core.Baseline(), 3)
	if len(col.Records) != 3 {
		t.Errorf("limit not honored: %d records", len(col.Records))
	}
}

func TestNDAPolicyVisibleInDeferral(t *testing.T) {
	// Under strict propagation a load in a branch shadow defers its
	// broadcast; the mean complete->broadcast gap must exceed baseline's.
	shadowProg := `
        .data
        .org 0x100000
size:   .word64 1000
        .align 64
buf:    .space 8192
        .text
main:   li   s0, 0x100040
        li   s1, 200
        la   s2, size
loop:   clflush (s2)
        fence
        ld   t0, (s2)        # slow branch condition
        blt  s1, t0, body    # resolves late: wide shadow
body:   ld   t1, (s0)        # in the shadow
        add  t2, t1, t1
        addi s1, s1, -1
        bne  s1, zero, loop
        halt
`
	base := collect(t, shadowProg, core.Baseline(), 0)
	strict := collect(t, shadowProg, core.Strict(), 0)
	if strict.BroadcastDeferral() <= base.BroadcastDeferral() {
		t.Errorf("strict deferral %.1f must exceed baseline %.1f",
			strict.BroadcastDeferral(), base.BroadcastDeferral())
	}
}

func TestRenderClipping(t *testing.T) {
	col := collect(t, `
        .data
        .org 0x400000
far:    .word64 1
        .text
main:   la   s0, far
        ld   t0, (s0)        # DRAM miss: long lifetime
        add  t1, t0, t0
        halt
`, core.Baseline(), 0)
	out := col.Render(40)
	lines := strings.Split(out, "\n")
	for _, line := range lines[2:] { // skip the header
		if len(line) > 40+45 { // 45 columns of prefix
			t.Errorf("line exceeds clip width: %q", line)
		}
	}
	if !strings.Contains(out, ">") {
		t.Error("clipped rows must be marked with '>'")
	}
}

func TestRenderEmpty(t *testing.T) {
	col := &Collector{}
	if !strings.Contains(col.Render(80), "no records") {
		t.Error("empty render")
	}
}
