// Package trace collects per-instruction pipeline life-cycle records from
// the out-of-order core and renders them as a text pipeline diagram —
// a quick way to *see* what an NDA policy does to the schedule: under
// strict propagation the gap between an instruction's C (complete) and B
// (broadcast) is the deferred wake-up the paper's Fig. 2 describes.
package trace

import (
	"fmt"
	"strings"

	"nda/internal/ooo"
)

// Collector accumulates retirement records from a core, keeping at most
// Limit (0 = unlimited).
type Collector struct {
	Limit   int
	Records []ooo.TraceEvent
}

// Attach installs the collector on a core. Records accumulate from the next
// retirement on.
func (t *Collector) Attach(c *ooo.Core) {
	c.TraceRetire = func(ev ooo.TraceEvent) {
		if t.Limit > 0 && len(t.Records) >= t.Limit {
			return
		}
		t.Records = append(t.Records, ev)
	}
}

// Stage letters in the diagram:
//
//	F fetch   D dispatch   I issue   C complete   B broadcast   R retire
//	= between issue and complete (executing)
//	. elsewhere within the instruction's lifetime
const legend = "F=fetch D=dispatch I=issue ==executing C=complete B=broadcast R=retire"

// Render draws the records as one line per instruction against a shared
// cycle axis, clipping the window to maxWidth columns.
func (t *Collector) Render(maxWidth int) string {
	if len(t.Records) == 0 {
		return "trace: no records\n"
	}
	if maxWidth <= 0 {
		maxWidth = 120
	}
	start := t.Records[0].Fetch
	end := t.Records[0].Retire
	for _, r := range t.Records {
		if r.Fetch < start {
			start = r.Fetch
		}
		if r.Retire > end {
			end = r.Retire
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "pipeline trace: %d instructions, cycles %d..%d (%s)\n\n",
		len(t.Records), start, end, legend)
	for _, r := range t.Records {
		fmt.Fprintf(&b, "%6d %#08x %-24s %s\n", r.Seq, r.PC, clip(r.Inst.String(), 24), lane(r, start, maxWidth))
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n-1] + "…"
	}
	return s
}

// lane renders one instruction's row. Cycles beyond the window are clipped
// with '>'.
func lane(r ooo.TraceEvent, start uint64, width int) string {
	col := func(cyc uint64) int { return int(cyc - start) }
	lastCol := col(r.Retire)
	clipped := false
	if lastCol >= width {
		lastCol = width - 1
		clipped = true
	}
	row := make([]byte, lastCol+1)
	for i := range row {
		row[i] = ' '
	}
	put := func(cyc uint64, ch byte) {
		c := col(cyc)
		if c < 0 {
			return
		}
		if c > lastCol {
			c = lastCol
		}
		row[c] = ch
	}
	// Fill the lifetime, then executing span, then milestones on top.
	for c := col(r.Fetch); c <= lastCol && c >= 0; c++ {
		row[c] = '.'
	}
	for c := col(r.Issue); c >= 0 && c <= lastCol && uint64(c)+start <= r.Complete; c++ {
		row[c] = '='
	}
	put(r.Fetch, 'F')
	put(r.Dispatch, 'D')
	put(r.Issue, 'I')
	put(r.Complete, 'C')
	if r.Broadcast > 0 {
		put(r.Broadcast, 'B')
	}
	put(r.Retire, 'R')
	if clipped {
		row[lastCol] = '>'
	}
	return string(row)
}

// BroadcastDeferral returns the mean complete→broadcast gap over recorded
// register-producing instructions — the visible footprint of an NDA policy.
func (t *Collector) BroadcastDeferral() float64 {
	var sum, n float64
	for _, r := range t.Records {
		if r.Broadcast >= r.Complete && r.Broadcast > 0 {
			sum += float64(r.Broadcast - r.Complete)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
