// Package progen generates seeded, deterministic programs for differential
// soundness fuzzing of the static gadget analyzer (internal/gadget) against
// the timing cores (internal/ooo).
//
// Each seed expands to a small assembly program built from one to four
// fragments drawn from a library of gadget templates (cache/BTB steering,
// chosen-code via kernel loads and privileged MSR reads, store-bypass) and
// deliberately-safe templates (fence-cut paths, taint kills, SPECOFF
// brackets, benign pointer chases). The fragments are parameterized by the
// seed — secret offsets, transmit masks, dependence-chain padding — so a
// sweep over seeds exercises the analyzer's taint lattice broadly while
// every program stays architecturally secret-independent: no fragment ever
// reads a planted secret on the architectural path. That discipline is what
// makes the differential harness (internal/diffuzz) sound: if the static
// analyzer calls a program SAFE under a policy but two runs with different
// planted secrets produce different channel traces, the analyzer — not the
// program — is wrong.
//
// Generator disciplines the harness relies on:
//
//   - Single-shot steering: every guard branch loads its flag from a cold
//     line and is architecturally always taken, while the zero-initialized
//     pattern history table predicts not-taken on first encounter. The
//     wrong path therefore executes exactly once, inside a ~DRAM-latency
//     window, with no training loops.
//   - Fragment isolation: every fragment ends in FENCE on all paths, so no
//     transient region leaks into the next fragment and the static
//     analyzer's regions match the dynamic speculation windows.
//   - At most one faulting fragment per program, with a trap handler that
//     resumes at the fragment's own FENCE.
//   - Secrets live only at the exported SecretBase/StaleBase/KSecretBase
//     regions (plus the planted MSR); the harness owns planting and cache
//     warming. Program-local data (flags, pointers, jump tables) is fixed
//     by the seed and identical across secret vectors.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"nda/internal/asm"
	"nda/internal/isa"
)

// Memory layout shared with the differential harness. Each region is one
// 64-byte cache line, so a single warming access covers it.
const (
	// SecretBase is the user-mode secret region read only by wrong-path
	// (steering) fragments.
	SecretBase = 0x1C0000
	// StaleBase is the stale-secret region used by store-bypass fragments:
	// the harness plants a secret there, and the generated program
	// architecturally overwrites the read byte with zero before (in
	// program order) reading it back.
	StaleBase = 0x1C2000
	// KSecretBase is the kernel-only secret region read by chosen-code
	// fragments; the architectural read always faults.
	KSecretBase = 0x1C4000
	// SecretBytes is the size of each secret region.
	SecretBytes = 64

	// ProbeBase is the transmit probe array; fragment f owns the 4KiB
	// sub-range at ProbeBase+f*probeStride, indexed in 512-byte steps.
	ProbeBase   = 0x180000
	probeStride = 0x1000
	lineShift   = 9 // transmit slot stride: 512 bytes, two cache lines

	// dataBase anchors per-fragment control cells. Each fragment owns a
	// 256-byte block holding its guard flag (+0x00), cold cell (+0x40),
	// and kind-specific cell (+0x80: bypass pointer, scratch slot, jump
	// table, or pointer-chase head); the offsets keep the cells on
	// distinct cache lines so a guard-flag miss never warms a cold cell.
	dataBase    = 0x100000
	fragStride  = 0x100
	offCold     = 0x40
	offAux      = 0x80
	offChaseEnd = 0xC0
)

// Fragment kind names, as recorded in Program.Frags.
const (
	FragSteerDCache  = "steer-dcache"
	FragSteerMemory  = "steer-memory"
	FragSteerBTB     = "steer-btb"
	FragChosenDirect = "chosen-direct"
	FragChosenChain  = "chosen-chain"
	FragChosenMemory = "chosen-memory"
	FragChosenMSR    = "chosen-msr"
	FragBypass       = "bypass"
	FragSafeFence    = "safe-fence"
	FragSafeKill     = "safe-kill"
	FragSafeSpecOff  = "safe-specoff"
	FragBenignLoop   = "benign-loop"
)

// GadgetKinds lists the fragment kinds that plant a real transient leak.
var GadgetKinds = []string{
	FragSteerDCache, FragSteerMemory, FragSteerBTB,
	FragChosenDirect, FragChosenChain, FragChosenMemory, FragChosenMSR,
	FragBypass,
}

// SafeKinds lists the fragment kinds that are secret-independent under
// every policy, dynamically and (for all but benign-loop) statically.
var SafeKinds = []string{
	FragSafeFence, FragSafeKill, FragSafeSpecOff, FragBenignLoop,
}

// faulting reports whether a fragment kind takes an architectural fault.
func faulting(kind string) bool {
	switch kind {
	case FragChosenDirect, FragChosenChain, FragChosenMemory, FragChosenMSR:
		return true
	}
	return false
}

// Program is one generated fuzz case.
type Program struct {
	Name   string
	Seed   int64
	Source string
	Prog   *isa.Program
	// Faulting programs install a trap handler and take exactly one
	// architectural fault (delivered identically for every secret vector).
	Faulting bool
	// UsesMSR programs read the planted secret MSR (isa.MSRSecretKey), so
	// the harness must vary the MSR value between runs, not just memory.
	UsesMSR bool
	// Frags names the emitted fragment kinds in program order.
	Frags []string
}

// Gen deterministically expands one seed into a program. The same seed
// always yields byte-identical source. An assembly error is a generator
// bug, never an input problem.
func Gen(seed int64) (*Program, error) {
	rng := rand.New(rand.NewSource(seed))
	e := &emitter{rng: rng}

	n := 1 + rng.Intn(4)
	kinds := make([]string, 0, n)
	safeOnly := rng.Intn(4) == 0
	haveFault := false
	for i := 0; i < n; i++ {
		var k string
		for {
			if safeOnly {
				k = SafeKinds[rng.Intn(len(SafeKinds))]
			} else if rng.Intn(3) == 0 {
				k = SafeKinds[rng.Intn(len(SafeKinds))]
			} else {
				k = GadgetKinds[rng.Intn(len(GadgetKinds))]
			}
			if !faulting(k) || !haveFault {
				break
			}
		}
		if faulting(k) {
			haveFault = true
		}
		kinds = append(kinds, k)
	}

	src := e.program(kinds)
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("progen: seed %d assembles badly: %w\n%s", seed, err, src)
	}
	return &Program{
		Name:     fmt.Sprintf("progen/%d", seed),
		Seed:     seed,
		Source:   src,
		Prog:     prog,
		Faulting: haveFault,
		UsesMSR:  e.usesMSR,
		Frags:    kinds,
	}, nil
}

// emitter accumulates the text and data sections of one program.
type emitter struct {
	rng     *rand.Rand
	text    strings.Builder
	data    strings.Builder
	tail    strings.Builder // stubs and the trap handler, after halt
	usesMSR bool
}

func (e *emitter) code(format string, args ...any) {
	fmt.Fprintf(&e.text, "        "+format+"\n", args...)
}

func (e *emitter) label(l string) {
	fmt.Fprintf(&e.text, "%s:\n", l)
}

func (e *emitter) program(kinds []string) string {
	// Prologue: install the trap handler before any fragment can fault,
	// and architecturally warm each BTB fragment's jump table (its entries
	// are fixed stub addresses, so the warming load is secret-independent).
	for f, k := range kinds {
		if faulting(k) {
			e.code("la   t0, handler%d", f)
			e.code("wrmsr 0x0, t0")
		}
		if k == FragSteerBTB {
			e.code("li   t6, %#x", e.aux(f))
			e.code("ld   t6, 0(t6)")
		}
	}
	for f, k := range kinds {
		e.fragment(f, k)
	}
	e.code("halt")

	var b strings.Builder
	b.WriteString("        .data\n")
	b.WriteString(e.data.String())
	// The kernel secret region is always emitted: chosen-code detection
	// keys on loads whose resolved address falls inside a kernel segment,
	// and the page protection is what makes the architectural read fault.
	// .word64 rather than .space: the kernel region must be a real data
	// segment (".space" only advances the cursor), both so the loader
	// protects the page and so the analyzer's kernel-address check sees it.
	b.WriteString(fmt.Sprintf("        .org %#x\n        .kernel\nksecret: .word64 0, 0, 0, 0, 0, 0, 0, 0\n", KSecretBase))
	b.WriteString("        .text\nmain:\n")
	b.WriteString(e.text.String())
	b.WriteString(e.tail.String())
	return b.String()
}

// Per-fragment cell addresses.
func (e *emitter) flag(f int) int  { return dataBase + f*fragStride }
func (e *emitter) cold(f int) int  { return dataBase + f*fragStride + offCold }
func (e *emitter) aux(f int) int   { return dataBase + f*fragStride + offAux }
func (e *emitter) probe(f int) int { return ProbeBase + f*probeStride }

// guardHead emits the single-shot steering guard: a cold flag load feeding
// an always-taken branch that the cold predictor resolves not-taken. The
// body emitted after it is the wrong path; guardTail closes the fragment.
func (e *emitter) guardHead(f int) {
	fmt.Fprintf(&e.data, "        .org %#x\nflag%d:  .word64 1\n", e.flag(f), f)
	e.code("li   t0, %#x", e.flag(f))
	e.code("ld   t1, 0(t0)")
	e.code("bne  t1, zero, skip%d", f)
}

func (e *emitter) guardTail(f int) {
	e.label(fmt.Sprintf("skip%d", f))
	e.code("fence")
}

// chain emits 0-2 taint-preserving scrambles of t3, lengthening the
// dependence chain so the analyzer sees non-direct-use flavors. When min
// is 1 at least one hop is emitted (chosen-chain).
func (e *emitter) chain(min int) {
	hops := min + e.rng.Intn(3-min)
	for i := 0; i < hops; i++ {
		switch e.rng.Intn(3) {
		case 0:
			e.code("xori t3, t3, 0x55")
		case 1:
			e.code("addi t3, t3, 0")
		case 2:
			e.code("add  t3, t3, zero")
		}
	}
}

// transmit emits the d-cache transmitter: mask t3 down to a slot index and
// touch the fragment's probe sub-range at that slot.
func (e *emitter) transmit(f int) {
	mask := []int{1, 3, 7}[e.rng.Intn(3)]
	e.code("andi t3, t3, %d", mask)
	e.code("slli t3, t3, %d", lineShift)
	e.code("li   t4, %#x", e.probe(f))
	e.code("add  t4, t4, t3")
	e.code("lbu  t5, 0(t4)")
}

// launder moves t3 through memory: a store to the fragment's scratch cell
// immediately read back. On the wrong path the load can only be satisfied
// by store-to-load forwarding; statically this is the edge only the memory
// taint cell tracks.
func (e *emitter) launder(f int) {
	e.code("li   t6, %#x", e.aux(f))
	e.code("sd   t3, 0(t6)")
	e.code("ld   t3, 0(t6)")
}

// coldDelay emits the retirement-delay load that holds a subsequent fault
// at the ROB head for a DRAM round trip, keeping the transient dependents
// of the faulting instruction alive long enough to transmit.
func (e *emitter) coldDelay(f int) {
	e.code("li   t0, %#x", e.cold(f))
	e.code("ld   t1, 0(t0)")
}

func (e *emitter) secretOff() int { return e.rng.Intn(SecretBytes) }

func (e *emitter) fragment(f int, kind string) {
	fmt.Fprintf(&e.text, "# frag %d: %s\n", f, kind)
	switch kind {
	case FragSteerDCache:
		e.guardHead(f)
		e.code("li   t2, %#x", SecretBase+e.secretOff())
		e.code("lbu  t3, 0(t2)")
		e.chain(0)
		e.transmit(f)
		e.guardTail(f)

	case FragSteerMemory:
		e.guardHead(f)
		e.code("li   t2, %#x", SecretBase+e.secretOff())
		e.code("lbu  t3, 0(t2)")
		e.launder(f)
		e.transmit(f)
		e.guardTail(f)

	case FragSteerBTB:
		// Secret-indexed indirect jump through a two-entry table of dead
		// stubs: the BTB install at the jump's resolution is the channel.
		fmt.Fprintf(&e.data, "        .org %#x\njt%d:    .word64 stub%d_0, stub%d_1\n",
			e.aux(f), f, f, f)
		fmt.Fprintf(&e.tail, "stub%d_0: j stub%d_0\nstub%d_1: j stub%d_1\n", f, f, f, f)
		e.guardHead(f)
		e.code("li   t2, %#x", SecretBase+e.secretOff())
		e.code("lbu  t3, 0(t2)")
		e.code("andi t3, t3, 1")
		e.code("slli t3, t3, 3")
		e.code("li   t4, %#x", e.aux(f))
		e.code("add  t4, t4, t3")
		e.code("ld   t5, 0(t4)")
		e.code("jr   t5")
		e.guardTail(f)

	case FragChosenDirect, FragChosenChain, FragChosenMemory:
		e.coldDelay(f)
		e.code("li   t2, %#x", KSecretBase+e.secretOff())
		e.code("lbu  t3, 0(t2)")
		switch kind {
		case FragChosenChain:
			e.chain(1)
		case FragChosenMemory:
			e.launder(f)
		}
		e.transmit(f)
		e.fragEpilogue(f)

	case FragChosenMSR:
		// LazyFP analogue: the privileged MSR read faults, its transient
		// value is an address, and the dependent load's fill IS the
		// transmit — no probe arithmetic at all.
		e.usesMSR = true
		e.coldDelay(f)
		e.code("rdmsr t2, %#x", int(isa.MSRSecretKey))
		e.code("lbu  t3, 0(t2)")
		e.fragEpilogue(f)

	case FragBypass:
		// Spectre v4: the sanitizing store's address arrives from a cold
		// pointer load, the stale-slot read below it speculatively
		// bypasses the store, and the dependents transmit the planted
		// stale secret. Architecturally the store lands first, so the
		// read byte is zero under every secret vector.
		off := e.secretOff()
		fmt.Fprintf(&e.data, "        .org %#x\nptr%d:   .word64 %#x\n",
			e.aux(f), f, StaleBase+off)
		e.code("li   t0, %#x", e.aux(f))
		e.code("ld   t1, 0(t0)")
		e.code("sd   zero, 0(t1)")
		e.code("li   t2, %#x", StaleBase+off)
		e.code("lbu  t3, 0(t2)")
		e.chain(0)
		e.transmit(f)
		e.code("fence")

	case FragSafeFence:
		// The wrong path opens with FENCE: fetch past it cannot issue
		// before the guard resolves, so the secret body below is dead
		// both statically (region cut) and dynamically.
		e.guardHead(f)
		e.code("fence")
		e.code("li   t2, %#x", SecretBase+e.secretOff())
		e.code("lbu  t3, 0(t2)")
		e.transmit(f)
		e.guardTail(f)

	case FragSafeKill:
		// The secret is loaded on the wrong path but overwritten by an
		// immediate before any use: the transmit address is a constant.
		e.guardHead(f)
		e.code("li   t2, %#x", SecretBase+e.secretOff())
		e.code("lbu  t3, 0(t2)")
		e.code("li   t3, %d", e.rng.Intn(8))
		e.transmit(f)
		e.guardTail(f)

	case FragSafeSpecOff:
		// Listing 4 software defense: with speculation fenced off around
		// the guard there is no wrong path to steer.
		e.code("specoff")
		e.guardHead(f)
		e.code("li   t2, %#x", SecretBase+e.secretOff())
		e.code("lbu  t3, 0(t2)")
		e.transmit(f)
		e.label(fmt.Sprintf("skip%d", f))
		e.code("specon")
		e.code("fence")

	case FragBenignLoop:
		// A two-hop pointer chase: the loop's back edge makes the chase
		// load part of its own guard's transient region, so the analyzer
		// reports a steering gadget, but every address is a fixed
		// program-local pointer — deliberate false-positive fodder for
		// the precision census.
		fmt.Fprintf(&e.data, "        .org %#x\nchase%d: .word64 %#x\n        .org %#x\n        .word64 0\n",
			e.aux(f), f, dataBase+f*fragStride+offChaseEnd, dataBase+f*fragStride+offChaseEnd)
		e.code("li   t1, %#x", e.aux(f))
		e.label(fmt.Sprintf("loop%d", f))
		e.code("ld   t1, 0(t1)")
		e.code("bne  t1, zero, loop%d", f)
		e.code("fence")

	default:
		panic("progen: unknown fragment kind " + kind)
	}
}

// fragEpilogue closes a faulting fragment: the trap handler (installed in
// the prologue) lands on resumeN, skipping the transient dependents.
func (e *emitter) fragEpilogue(f int) {
	e.label(fmt.Sprintf("resume%d", f))
	e.code("fence")
	fmt.Fprintf(&e.tail, "handler%d: j resume%d\n", f, f)
}
