package progen

import (
	"strings"
	"testing"
)

// Same seed, same program — the harness and CI replay failures by seed.
func TestGenDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, err := Gen(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Gen(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Source != b.Source {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		if a.Name != b.Name || a.Faulting != b.Faulting || a.UsesMSR != b.UsesMSR {
			t.Fatalf("seed %d: metadata differs across generations", seed)
		}
	}
}

// Every fragment kind must appear within a modest seed range, every program
// must assemble, and the generator disciplines must hold: at most one
// faulting fragment, handler install iff faulting, MSR flag iff chosen-msr.
func TestGenCoverageAndDisciplines(t *testing.T) {
	kinds := map[string]int{}
	for seed := int64(0); seed < 400; seed++ {
		p, err := Gen(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(p.Frags) < 1 || len(p.Frags) > 4 {
			t.Fatalf("seed %d: %d fragments", seed, len(p.Frags))
		}
		faults, msr := 0, false
		for _, k := range p.Frags {
			kinds[k]++
			if faulting(k) {
				faults++
			}
			if k == FragChosenMSR {
				msr = true
			}
		}
		if faults > 1 {
			t.Errorf("seed %d: %d faulting fragments, want <= 1 (%v)", seed, faults, p.Frags)
		}
		if (faults > 0) != p.Faulting {
			t.Errorf("seed %d: Faulting=%v but %d faulting fragments", seed, p.Faulting, faults)
		}
		if msr != p.UsesMSR {
			t.Errorf("seed %d: UsesMSR=%v but chosen-msr present=%v", seed, p.UsesMSR, msr)
		}
		if p.Faulting != strings.Contains(p.Source, "wrmsr 0x0") {
			t.Errorf("seed %d: handler install does not match Faulting=%v", seed, p.Faulting)
		}
	}
	for _, k := range append(append([]string{}, GadgetKinds...), SafeKinds...) {
		if kinds[k] == 0 {
			t.Errorf("fragment kind %s never generated in 400 seeds", k)
		}
	}
}

// The kernel secret region must be a real kernel-protected data segment:
// both the architectural fault and the analyzer's chosen-code detection
// depend on it.
func TestKernelSegment(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p, err := Gen(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		found := false
		for _, seg := range p.Prog.Data {
			if seg.Kernel && seg.Addr == KSecretBase && len(seg.Bytes) == SecretBytes {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: no %d-byte kernel segment at %#x", seed, SecretBytes, uint64(KSecretBase))
		}
	}
}
