// Package emu implements a functional (architectural) reference emulator for
// the ISA. It executes one instruction at a time with no notion of caches,
// pipelines, or speculation, and serves as the golden model the timing cores
// are differentially tested against: after running the same program on the
// same initial memory image, registers, memory, and retirement counts must
// match exactly.
//
// RDCYCLE is the one deliberate divergence: a functional emulator has no
// cycles, so it returns the retired-instruction count. Programs whose
// architectural results depend on RDCYCLE values (the attack PoCs) are not
// differentially tested.
package emu

import (
	"fmt"

	"nda/internal/isa"
	"nda/internal/mem"
)

// Load applies a program's data segments and page protections to a memory.
func Load(m *mem.Memory, p *isa.Program) {
	for _, seg := range p.Data {
		m.StoreBytes(seg.Addr, seg.Bytes)
		if seg.Kernel {
			m.SetKernel(seg.Addr, uint64(len(seg.Bytes)))
		}
	}
}

// Machine is the architectural state of the reference emulator.
type Machine struct {
	Prog *isa.Program
	Mem  *mem.Memory
	Regs [isa.NumGPR]uint64
	MSR  [isa.NumMSR]uint64
	PC   uint64

	// UserMode selects whether protection checks apply. All workloads and
	// attacks in this repository run in user mode.
	UserMode bool

	Halted  bool
	Retired uint64

	// Faults counts architectural faults taken (delivered to the handler).
	Faults uint64

	// Last describes the most recently executed instruction; timing
	// wrappers (the in-order core) read it to charge cache latencies.
	Last StepInfo
}

// StepInfo is the trace record of one executed instruction.
type StepInfo struct {
	PC      uint64
	Inst    isa.Inst
	MemAddr uint64 // valid when MemSize > 0
	MemSize int    // 0 for non-memory instructions
	IsStore bool
	Taken   bool // control transfer taken (branches, jumps, faults)
	Faulted bool
}

// New builds a machine with the program loaded into a fresh memory, PC at
// the entry point, and user mode enabled.
func New(p *isa.Program) *Machine {
	m := mem.New()
	Load(m, p)
	return &Machine{Prog: p, Mem: m, PC: p.Entry, UserMode: true}
}

// NewWithMemory builds a machine on an existing memory image (which must
// already contain the program's data).
func NewWithMemory(p *isa.Program, m *mem.Memory) *Machine {
	return &Machine{Prog: p, Mem: m, PC: p.Entry, UserMode: true}
}

// fault delivers an architectural fault: if a trap handler is installed the
// machine vectors to it, otherwise the fault is fatal.
func (m *Machine) fault(kind isa.FaultKind, addr uint64) error {
	m.Faults++
	m.Last.Faulted = true
	m.Last.Taken = true
	handler := m.MSR[isa.MSRTrapHandler]
	if handler == 0 {
		return fmt.Errorf("emu: unhandled fault %v at pc=%#x addr=%#x", kind, m.PC, addr)
	}
	m.MSR[isa.MSRTrapCause] = uint64(kind)
	m.MSR[isa.MSRTrapAddr] = addr
	m.PC = handler
	return nil
}

func (m *Machine) readReg(r isa.Reg) uint64 {
	if r == isa.RegZero {
		return 0
	}
	return m.Regs[r]
}

func (m *Machine) writeReg(r isa.Reg, v uint64) {
	if r != isa.RegZero {
		m.Regs[r] = v
	}
}

// Step executes one instruction. It returns an error only for conditions
// that cannot be delivered as architectural faults (fatal simulation
// errors): fetching outside the text segment or an invalid opcode with no
// handler installed.
func (m *Machine) Step() error {
	if m.Halted {
		return nil
	}
	inst, ok := m.Prog.At(m.PC)
	if !ok {
		return fmt.Errorf("emu: fetch outside text segment at pc=%#x", m.PC)
	}
	next := m.PC + isa.InstBytes
	m.Last = StepInfo{PC: m.PC, Inst: inst}

	switch {
	case isa.IsALU(inst.Op):
		b := isa.ALUOperandB(inst, m.readReg(inst.Rs2))
		a := m.readReg(inst.Rs1)
		if inst.Op == isa.OpLui {
			a = 0
		}
		m.writeReg(inst.Rd, isa.EvalALU(inst.Op, a, b))

	case inst.IsLoad():
		addr := m.readReg(inst.Rs1) + uint64(inst.Imm)
		size := inst.MemBytes()
		m.Last.MemAddr, m.Last.MemSize = addr, size
		if m.UserMode && !m.Mem.UserAccessOK(addr, size) {
			m.Retired++
			return m.fault(isa.FaultKernelLoad, addr)
		}
		m.writeReg(inst.Rd, m.Mem.Read(addr, size))

	case inst.IsStore():
		addr := m.readReg(inst.Rs1) + uint64(inst.Imm)
		size := inst.MemBytes()
		m.Last.MemAddr, m.Last.MemSize, m.Last.IsStore = addr, size, true
		if m.UserMode && !m.Mem.UserAccessOK(addr, size) {
			m.Retired++
			return m.fault(isa.FaultKernelStore, addr)
		}
		m.Mem.Write(addr, size, m.readReg(inst.Rs2))

	case inst.IsCondBranch():
		if isa.EvalBranch(inst.Op, m.readReg(inst.Rs1), m.readReg(inst.Rs2)) {
			next = uint64(inst.Imm)
		}

	case inst.Op == isa.OpJal:
		m.writeReg(inst.Rd, next)
		next = uint64(inst.Imm)

	case inst.Op == isa.OpJalr:
		target := (m.readReg(inst.Rs1) + uint64(inst.Imm)) &^ 1
		m.writeReg(inst.Rd, next)
		next = target

	case inst.Op == isa.OpRdcycle:
		// Functional model: no cycles; expose retired-instruction count.
		m.writeReg(inst.Rd, m.Retired)

	case inst.Op == isa.OpRdmsr:
		msr := uint16(inst.Imm)
		if msr >= isa.NumMSR {
			m.Retired++
			return m.fault(isa.FaultPrivilegeMSR, uint64(msr))
		}
		if m.UserMode && isa.PrivilegedMSR(msr) {
			m.Retired++
			return m.fault(isa.FaultPrivilegeMSR, uint64(msr))
		}
		m.writeReg(inst.Rd, m.MSR[msr])

	case inst.Op == isa.OpWrmsr:
		msr := uint16(inst.Imm)
		if msr >= isa.NumMSR || (m.UserMode && isa.PrivilegedMSR(msr)) {
			m.Retired++
			return m.fault(isa.FaultPrivilegeMSR, uint64(msr))
		}
		m.MSR[msr] = m.readReg(inst.Rs1)

	case inst.Op == isa.OpClflush, inst.Op == isa.OpFence,
		inst.Op == isa.OpSpecOff, inst.Op == isa.OpSpecOn,
		inst.Op == isa.OpNop:
		// No architectural effect.

	case inst.Op == isa.OpHalt:
		m.Halted = true
		m.Retired++
		return nil

	default:
		return fmt.Errorf("emu: invalid opcode at pc=%#x", m.PC)
	}

	m.Retired++
	m.Last.Taken = next != m.PC+isa.InstBytes
	m.PC = next
	return nil
}

// Run executes until HALT or maxInsts instructions, whichever comes first.
// It returns an error for fatal simulation errors; exceeding maxInsts
// without halting is reported as an error so runaway programs are caught.
func (m *Machine) Run(maxInsts uint64) error {
	for !m.Halted {
		if m.Retired >= maxInsts {
			return fmt.Errorf("emu: exceeded %d instructions without halting", maxInsts)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunN executes at most n instructions (no halt required); used by sampling
// methodologies that measure fixed instruction windows.
func (m *Machine) RunN(n uint64) error {
	target := m.Retired + n
	for !m.Halted && m.Retired < target {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}
