package emu

import (
	"strings"
	"testing"

	"nda/internal/asm"
	"nda/internal/isa"
	"nda/internal/mem"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArithmeticLoop(t *testing.T) {
	m := run(t, `
main:   li   t0, 0      # sum
        li   t1, 1      # i
loop:   add  t0, t0, t1
        addi t1, t1, 1
        slti t2, t1, 11
        bne  t2, zero, loop
        halt
`)
	if got := m.Regs[isa.RegT0]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestMemoryOps(t *testing.T) {
	m := run(t, `
        .data
        .org 0x10000
arr:    .word64 10, 20, 30
        .text
main:   la   s0, arr
        ld   t0, 8(s0)
        addi t0, t0, 5
        sd   t0, 16(s0)
        lw   t1, 16(s0)
        lbu  t2, 16(s0)
        halt
`)
	if m.Regs[isa.RegT1] != 25 || m.Regs[isa.RegT2] != 25 {
		t.Errorf("t1=%d t2=%d, want 25", m.Regs[isa.RegT1], m.Regs[isa.RegT2])
	}
	if got := m.Mem.Read(0x10010, 8); got != 25 {
		t.Errorf("mem = %d", got)
	}
}

func TestCallReturn(t *testing.T) {
	m := run(t, `
main:   li   a0, 5
        call double
        call double
        halt
double: add  a0, a0, a0
        ret
`)
	if m.Regs[isa.RegA0] != 20 {
		t.Errorf("a0 = %d, want 20", m.Regs[isa.RegA0])
	}
}

func TestIndirectJump(t *testing.T) {
	m := run(t, `
        .data
        .org 0x10000
tbl:    .word64 f0, f1
        .text
main:   la   s0, tbl
        ld   t0, 8(s0)
        callr t0
        halt
f0:     li   a0, 100
        ret
f1:     li   a0, 200
        ret
`)
	if m.Regs[isa.RegA0] != 200 {
		t.Errorf("a0 = %d, want 200", m.Regs[isa.RegA0])
	}
}

func TestKernelLoadFaultsToHandler(t *testing.T) {
	m := run(t, `
        .data
        .org 0x20000
        .kernel
secret: .word64 0x1337
        .text
main:   la   t0, handler
        wrmsr 0x0, t0        # install trap handler
        la   t1, secret
        ld   t2, (t1)        # faults
        li   t3, 111         # skipped
        halt
handler:
        li   t4, 222
        halt
`)
	if m.Regs[isa.Reg(28)] != 0 { // t3 = x28
		t.Error("instruction after fault must not execute")
	}
	if m.Regs[isa.Reg(29)] != 222 { // t4 = x29
		t.Error("handler must run")
	}
	if m.Faults != 1 {
		t.Errorf("faults = %d", m.Faults)
	}
	if isa.FaultKind(m.MSR[isa.MSRTrapCause]) != isa.FaultKernelLoad {
		t.Errorf("cause = %v", isa.FaultKind(m.MSR[isa.MSRTrapCause]))
	}
	if m.MSR[isa.MSRTrapAddr] != 0x20000 {
		t.Errorf("fault addr = %#x", m.MSR[isa.MSRTrapAddr])
	}
	// The faulting load must not have written its destination.
	if m.Regs[isa.RegT2] != 0 {
		t.Error("faulting load must not update its register")
	}
}

func TestUnhandledFaultFatal(t *testing.T) {
	p := asm.MustAssemble(`
        .data
        .org 0x20000
        .kernel
secret: .word64 1
        .text
main:   la t0, secret
        ld t1, (t0)
        halt
`)
	m := New(p)
	err := m.Run(100)
	if err == nil || !strings.Contains(err.Error(), "unhandled fault") {
		t.Errorf("err = %v", err)
	}
}

func TestPrivilegedMSRFaults(t *testing.T) {
	m := run(t, `
main:   la t0, handler
        wrmsr 0x0, t0
        rdmsr t1, 0x10       # privileged: faults
        halt
handler: li t2, 1
        halt
`)
	if m.Regs[isa.RegT2] != 1 {
		t.Error("privileged rdmsr must fault to the handler")
	}
	if isa.FaultKind(m.MSR[isa.MSRTrapCause]) != isa.FaultPrivilegeMSR {
		t.Errorf("cause = %v", isa.FaultKind(m.MSR[isa.MSRTrapCause]))
	}
}

func TestKernelModeAccess(t *testing.T) {
	p := asm.MustAssemble(`
        .data
        .org 0x20000
        .kernel
secret: .word64 77
        .text
main:   la t0, secret
        ld t1, (t0)
        rdmsr t2, 0x10
        halt
`)
	m := New(p)
	m.UserMode = false
	m.MSR[isa.MSRSecretKey] = 99
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[isa.RegT1] != 77 || m.Regs[isa.RegT2] != 99 {
		t.Errorf("kernel mode reads: t1=%d t2=%d", m.Regs[isa.RegT1], m.Regs[isa.RegT2])
	}
}

func TestScratchMSRRoundTrip(t *testing.T) {
	m := run(t, `
main:   li t0, 4242
        wrmsr 0x3, t0
        rdmsr t1, 0x3
        halt
`)
	if m.Regs[isa.RegT1] != 4242 {
		t.Errorf("scratch MSR = %d", m.Regs[isa.RegT1])
	}
}

func TestDivRemEdge(t *testing.T) {
	m := run(t, `
main:   li t0, 7
        li t1, 0
        div t2, t0, t1
        rem t3, t0, t1
        halt
`)
	if m.Regs[isa.RegT2] != ^uint64(0) {
		t.Error("div by zero must be all-ones")
	}
	if m.Regs[isa.Reg(28)] != 7 {
		t.Error("rem by zero must be the dividend")
	}
}

func TestRunawayDetected(t *testing.T) {
	p := asm.MustAssemble("main: j main")
	m := New(p)
	if err := m.Run(1000); err == nil {
		t.Error("infinite loop must be detected")
	}
}

func TestFetchOffTextFatal(t *testing.T) {
	p := asm.MustAssemble("main: nop") // falls off the end
	m := New(p)
	m.Step()
	if err := m.Step(); err == nil || !strings.Contains(err.Error(), "outside text") {
		t.Errorf("err = %v", err)
	}
}

func TestRunN(t *testing.T) {
	p := asm.MustAssemble(`
main:   li t0, 0
loop:   addi t0, t0, 1
        j loop
`)
	m := New(p)
	if err := m.RunN(101); err != nil {
		t.Fatal(err)
	}
	if m.Retired != 101 {
		t.Errorf("retired = %d", m.Retired)
	}
}

func TestStepInfo(t *testing.T) {
	p := asm.MustAssemble(`
        .data
        .org 0x10000
x:      .word64 5
        .text
main:   la t0, x
        ld t1, (t0)
        sd t1, 8(t0)
        beq t1, t1, main
`)
	m := New(p)
	m.Step()
	m.Step()
	if got := m.Last; !got.Inst.IsLoad() || got.MemAddr != 0x10000 || got.MemSize != 8 || got.IsStore {
		t.Errorf("load info = %+v", got)
	}
	m.Step()
	if got := m.Last; !got.IsStore || got.MemAddr != 0x10008 {
		t.Errorf("store info = %+v", got)
	}
	m.Step()
	if !m.Last.Taken {
		t.Error("taken branch must be recorded")
	}
}

func TestHaltIsSticky(t *testing.T) {
	m := run(t, "main: halt")
	r := m.Retired
	if err := m.Step(); err != nil || m.Retired != r {
		t.Error("stepping a halted machine must be a no-op")
	}
}

func TestNewWithMemory(t *testing.T) {
	p := asm.MustAssemble(`
main:   la t0, 0x9000
        ld t1, (t0)
        halt
`)
	m0 := mem.New()
	m0.Write(0x9000, 8, 777)
	m := NewWithMemory(p, m0)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Regs[isa.RegT1] != 777 {
		t.Errorf("t1 = %d", m.Regs[isa.RegT1])
	}
}

func TestLoadAppliesKernelPerms(t *testing.T) {
	p := asm.MustAssemble(`
        .data
        .org 0x20000
        .kernel
sec:    .word64 5
        .text
main:   halt
`)
	m0 := mem.New()
	Load(m0, p)
	if !m0.KernelOnly(0x20000) {
		t.Error("Load must apply kernel protection")
	}
	if m0.Read(0x20000, 8) != 5 {
		t.Error("Load must apply data")
	}
}

func TestRunNOnHaltedMachine(t *testing.T) {
	m := run(t, "main: halt")
	if err := m.RunN(10); err != nil {
		t.Fatal(err)
	}
}
