package cache

// HierarchyParams configures the three-level hierarchy. The defaults
// (DefaultHierarchyParams) reproduce Table 3 of the paper at 2.0 GHz.
type HierarchyParams struct {
	L1I, L1D, L2 Params
	DRAMLatency  int // additional round-trip cycles beyond the L2 lookup on an L2 miss

	// NextLinePrefetch enables a simple next-line prefetcher on the
	// instruction path: each fetch pulls the following line into L1I/L2 in
	// the background, so straight-line code does not pay a cold miss per
	// line (every modern front end prefetches at least this much).
	NextLinePrefetch bool
}

// DefaultHierarchyParams returns the Table 3 configuration: 32kB 8-way
// L1I/L1D with 4-cycle round trips, a 2MB 16-way L2 with a 40-cycle round
// trip, and 50ns (100 cycles at 2GHz) DRAM response latency.
func DefaultHierarchyParams() HierarchyParams {
	return HierarchyParams{
		L1I:         Params{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitLatency: 4},
		L1D:         Params{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, HitLatency: 4},
		L2:          Params{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Ways: 16, HitLatency: 40},
		DRAMLatency: 100,

		NextLinePrefetch: true,
	}
}

// Hierarchy is the full cache system shared by a core: split L1s over a
// unified L2 over DRAM.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	p            HierarchyParams
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(p HierarchyParams) *Hierarchy {
	return &Hierarchy{L1I: New(p.L1I), L1D: New(p.L1D), L2: New(p.L2), p: p}
}

// Result describes one access: its total round-trip latency and the level
// that supplied the data.
type Result struct {
	Latency int
	Level   Level
}

// OffChip reports whether the access went all the way to DRAM. The paper's
// MLP metric counts outstanding off-chip misses.
func (r Result) OffChip() bool { return r.Level == LevelDRAM }

func (h *Hierarchy) access(l1 *Cache, addr uint64, install bool) Result {
	if l1.Lookup(addr) {
		return Result{Latency: l1.Params().HitLatency, Level: LevelL1}
	}
	if h.L2.Lookup(addr) {
		if install {
			l1.Install(addr)
		}
		return Result{Latency: h.L2.Params().HitLatency, Level: LevelL2}
	}
	if install {
		h.L2.Install(addr)
		l1.Install(addr)
	}
	return Result{Latency: h.L2.Params().HitLatency + h.p.DRAMLatency, Level: LevelDRAM}
}

// Data performs a normal data access: the line is installed into L1D and L2
// on a miss (write-allocate; loads and stores are treated alike for timing).
func (h *Hierarchy) Data(addr uint64) Result { return h.access(h.L1D, addr, true) }

// DataNoInstall computes the latency a data access would take but leaves the
// cache contents untouched on a miss. This models InvisiSpec's speculative
// buffer: the load gets its value but leaves no trace.
func (h *Hierarchy) DataNoInstall(addr uint64) Result { return h.access(h.L1D, addr, false) }

// Inst performs an instruction-fetch access through L1I. With
// NextLinePrefetch enabled the following line is pulled in quietly (no
// latency, no stat counts) — the background prefetch of a real front end.
func (h *Hierarchy) Inst(addr uint64) Result {
	r := h.access(h.L1I, addr, true)
	if h.p.NextLinePrefetch {
		next := addr + uint64(h.L1I.LineBytes())
		if !h.L1I.Present(next) {
			h.L2.Install(next)
			h.L1I.Install(next)
		}
	}
	return r
}

// InstallData exposes a formerly invisible line to the hierarchy (InvisiSpec
// exposure at the safe point).
func (h *Hierarchy) InstallData(addr uint64) {
	h.L2.Install(addr)
	h.L1D.Install(addr)
}

// DataPresent reports whether addr is in L1D or L2, without side effects.
func (h *Hierarchy) DataPresent(addr uint64) bool {
	return h.L1D.Present(addr) || h.L2.Present(addr)
}

// Flush removes addr's line from every level (CLFLUSH semantics).
func (h *Hierarchy) Flush(addr uint64) {
	h.L1I.Flush(addr)
	h.L1D.Flush(addr)
	h.L2.Flush(addr)
}

// LineBytes returns the (common) line size of the hierarchy.
func (h *Hierarchy) LineBytes() int { return h.L1D.LineBytes() }

// Params returns the hierarchy configuration.
func (h *Hierarchy) Params() HierarchyParams { return h.p }

// ResetStats zeroes all per-level counters.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
}
