// Package cache models a set-associative cache hierarchy with LRU
// replacement and fixed round-trip latencies, mirroring the gem5
// configuration in Table 3 of the NDA paper (32kB 8-way L1I/L1D at 4 cycles,
// 2MB 16-way L2 at 40 cycles, 50ns DRAM).
//
// The hierarchy is a timing model: an access returns the round-trip latency
// and the level that serviced it, and installs the line into the levels it
// traversed. Installation can be suppressed, which is how the InvisiSpec
// comparator makes speculative loads invisible to the cache state.
package cache

import "fmt"

// Level identifies which level of the hierarchy serviced an access.
type Level int

const (
	LevelL1 Level = iota
	LevelL2
	LevelDRAM
)

// String returns the level's conventional name.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelDRAM:
		return "DRAM"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Params configures a single cache.
type Params struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	HitLatency int // round-trip cycles on a hit at this level
}

// Stats counts hits and misses observed by one cache.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns total lookups.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses / accesses, or 0 if there were no accesses.
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

type way struct {
	valid bool
	tag   uint64
	stamp uint64 // LRU timestamp; larger = more recently used
}

// Cache is a single set-associative cache with true-LRU replacement.
type Cache struct {
	p       Params
	sets    [][]way
	numSets int
	shift   uint // log2(LineBytes)
	clock   uint64
	stats   Stats
}

// New builds a cache from params. SizeBytes must be divisible by
// LineBytes*Ways and the resulting set count must be a power of two.
func New(p Params) *Cache {
	if p.LineBytes <= 0 || p.Ways <= 0 || p.SizeBytes <= 0 {
		panic(fmt.Sprintf("cache %s: invalid params %+v", p.Name, p))
	}
	if p.SizeBytes%(p.LineBytes*p.Ways) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by line*ways", p.Name, p.SizeBytes))
	}
	numSets := p.SizeBytes / (p.LineBytes * p.Ways)
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", p.Name, numSets))
	}
	shift := uint(0)
	for 1<<shift < p.LineBytes {
		shift++
	}
	if 1<<shift != p.LineBytes {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", p.Name, p.LineBytes))
	}
	sets := make([][]way, numSets)
	backing := make([]way, numSets*p.Ways)
	for i := range sets {
		sets[i], backing = backing[:p.Ways], backing[p.Ways:]
	}
	return &Cache{p: p, sets: sets, numSets: numSets, shift: shift}
}

// Params returns the cache's configuration.
func (c *Cache) Params() Params { return c.p }

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the hit/miss counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.shift
	return int(line & uint64(c.numSets-1)), line >> uint(log2(c.numSets))
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// Lookup probes the cache for addr. On a hit the line's LRU stamp is
// refreshed. The hit/miss counters are updated.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	c.clock++
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			w.stamp = c.clock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Present reports whether addr's line is cached, without touching LRU state
// or counters. Used by validation logic and by tests.
func (c *Cache) Present(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Install brings addr's line into the cache, evicting the LRU way if the
// set is full. It reports whether an eviction occurred. Installing a line
// that is already present only refreshes its stamp.
func (c *Cache) Install(addr uint64) (evicted bool) {
	set, tag := c.index(addr)
	c.clock++
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			w.stamp = c.clock
			return false
		}
		if !w.valid {
			if victim == -1 || c.sets[set][victim].valid {
				victim = i
			}
			oldest = 0
		} else if w.stamp < oldest {
			victim, oldest = i, w.stamp
		}
	}
	w := &c.sets[set][victim]
	evicted = w.valid
	*w = way{valid: true, tag: tag, stamp: c.clock}
	return evicted
}

// Flush removes addr's line if present and reports whether it was.
func (c *Cache) Flush(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			w.valid = false
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache (contents only; stats are kept).
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = way{}
		}
	}
}

// LineBytes returns the cache's line size.
func (c *Cache) LineBytes() int { return c.p.LineBytes }
