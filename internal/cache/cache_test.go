package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	// 4 sets x 2 ways x 64B lines = 512B.
	return New(Params{Name: "test", SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 4})
}

func TestMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x1000) {
		t.Error("empty cache must miss")
	}
	c.Install(0x1000)
	if !c.Lookup(0x1000) {
		t.Error("installed line must hit")
	}
	if !c.Lookup(0x1030) {
		t.Error("same line, different offset must hit")
	}
	if c.Lookup(0x1040) {
		t.Error("next line must miss")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache()
	// Three lines mapping to the same set (set stride = 4 sets * 64B = 256B).
	a, b, d := uint64(0x0000), uint64(0x0100), uint64(0x0200)
	c.Install(a)
	c.Install(b)
	c.Lookup(a) // refresh a; b becomes LRU
	if ev := c.Install(d); !ev {
		t.Error("installing into a full set must evict")
	}
	if !c.Present(a) {
		t.Error("recently used line must survive")
	}
	if c.Present(b) {
		t.Error("LRU line must be evicted")
	}
	if !c.Present(d) {
		t.Error("new line must be present")
	}
}

func TestInstallIdempotent(t *testing.T) {
	c := smallCache()
	c.Install(0x40)
	if ev := c.Install(0x40); ev {
		t.Error("re-installing a present line must not evict")
	}
}

func TestFlush(t *testing.T) {
	c := smallCache()
	c.Install(0x80)
	if !c.Flush(0x80) {
		t.Error("flush of present line must report true")
	}
	if c.Present(0x80) {
		t.Error("flushed line must be gone")
	}
	if c.Flush(0x80) {
		t.Error("flush of absent line must report false")
	}
}

func TestPresentHasNoSideEffects(t *testing.T) {
	c := smallCache()
	c.Install(0x40)
	before := c.Stats()
	c.Present(0x40)
	c.Present(0x1234560)
	if c.Stats() != before {
		t.Error("Present must not touch counters")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := smallCache()
	c.Install(0x40)
	c.Install(0x80)
	c.InvalidateAll()
	if c.Present(0x40) || c.Present(0x80) {
		t.Error("InvalidateAll must empty the cache")
	}
}

func TestCapacityBound(t *testing.T) {
	c := smallCache() // 8 lines total
	f := func(seed int64) bool {
		c.InvalidateAll()
		r := rand.New(rand.NewSource(seed))
		addrs := make(map[uint64]bool)
		for i := 0; i < 100; i++ {
			a := uint64(r.Intn(1<<16)) &^ 63
			c.Install(a)
			addrs[a] = true
		}
		present := 0
		for a := range addrs {
			if c.Present(a) {
				present++
			}
		}
		return present <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBadParamsPanic(t *testing.T) {
	for _, p := range []Params{
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 512, LineBytes: 60, Ways: 2}, // line size not a power of two
		{SizeBytes: 768, LineBytes: 64, Ways: 2}, // set count not a power of two
		{SizeBytes: 500, LineBytes: 64, Ways: 2}, // not divisible
	} {
		func() {
			defer func() { recover() }()
			New(p)
			t.Errorf("params %+v must panic", p)
		}()
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats must have zero miss rate")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 || s.Accesses() != 4 {
		t.Errorf("miss rate = %v", s.MissRate())
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyParams())
	addr := uint64(0x10000)

	r := h.Data(addr)
	if r.Level != LevelDRAM || r.Latency != 140 {
		t.Errorf("cold access = %+v, want DRAM/140", r)
	}
	if !r.OffChip() {
		t.Error("DRAM access must be off-chip")
	}
	r = h.Data(addr)
	if r.Level != LevelL1 || r.Latency != 4 {
		t.Errorf("warm access = %+v, want L1/4", r)
	}

	// Evict from L1 only: a string of conflicting lines (same L1 set).
	h.L1D.Flush(addr)
	r = h.Data(addr)
	if r.Level != LevelL2 || r.Latency != 40 {
		t.Errorf("L1-flushed access = %+v, want L2/40", r)
	}
}

func TestHierarchyNoInstall(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyParams())
	addr := uint64(0x20000)
	r := h.DataNoInstall(addr)
	if r.Level != LevelDRAM {
		t.Errorf("cold no-install = %+v", r)
	}
	if h.DataPresent(addr) {
		t.Error("no-install access must leave the line absent")
	}
	r = h.DataNoInstall(addr)
	if r.Level != LevelDRAM {
		t.Error("repeated no-install access must still miss (no speculative reuse)")
	}
	h.InstallData(addr)
	if !h.DataPresent(addr) {
		t.Error("InstallData must expose the line")
	}
	if r := h.Data(addr); r.Level != LevelL1 {
		t.Errorf("exposed line = %+v, want L1 hit", r)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyParams())
	addr := uint64(0x30000)
	h.Data(addr)
	h.Inst(addr)
	h.Flush(addr)
	if h.DataPresent(addr) || h.L1I.Present(addr) {
		t.Error("Flush must remove the line from every level")
	}
}

func TestInstPath(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyParams())
	addr := uint64(0x40000)
	if r := h.Inst(addr); r.Level != LevelDRAM {
		t.Errorf("cold fetch = %+v", r)
	}
	if r := h.Inst(addr); r.Level != LevelL1 || r.Latency != 4 {
		t.Errorf("warm fetch = %+v", r)
	}
	// I-fetch must not populate L1D.
	if h.L1D.Present(addr) {
		t.Error("instruction fetch must not fill L1D")
	}
	// But it shares L2.
	if !h.L2.Present(addr) {
		t.Error("instruction fetch must fill L2")
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelDRAM.String() != "DRAM" {
		t.Error("level names")
	}
	if Level(9).String() != "Level(9)" {
		t.Error("unknown level name")
	}
}
