// Package asm implements a two-pass text assembler for the simulator's ISA.
//
// The syntax is RISC-V-flavoured. A source file is a sequence of lines; each
// line may contain a label, a directive or instruction, and a comment
// (introduced by '#' or "//"):
//
//	        .text
//	        .org 0x1000
//	main:   li    t0, 123          # 64-bit immediate load
//	        la    a0, table        # load a label's address
//	        ld    t1, 16(t2)
//	loop:   beq   t0, t1, done
//	        call  helper
//	        j     loop
//	done:   halt
//
//	        .data
//	        .org 0x100000
//	table:  .word64 1, 2, 3, helper
//	buf:    .space 4096
//	        .kernel                # pages of following data are kernel-only
//	secret: .byte 42
//
// Sections: ".text" holds instructions, ".data" holds initialized bytes.
// ".org ADDR" sets the location counter of the current section. ".kernel"
// and ".user" set the protection of subsequently emitted data. Supported
// data directives: .byte, .word32, .word64, .ascii, .asciiz, .space, .align.
//
// Immediates may be decimal, hex (0x..), character ('c'), or a symbol,
// optionally with a +N/-N offset (e.g. "table+8"). Branch and jump targets
// are resolved to absolute byte addresses.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"nda/internal/isa"
)

// Error describes an assembly failure with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

type assembler struct {
	symbols map[string]uint64

	textBase uint64
	textPC   uint64
	insts    []isa.Inst

	dataCursor uint64
	kernel     bool
	segments   []isa.Segment
	curSeg     *isa.Segment

	section section
	pass    int
	lineNo  int
}

// Assemble translates source into a Program. The text section defaults to
// isa.DefaultTextBase; entry is the "main" or "_start" label if defined,
// otherwise the start of text.
func Assemble(source string) (*isa.Program, error) {
	a := &assembler{symbols: make(map[string]uint64), textBase: isa.DefaultTextBase}
	lines := strings.Split(source, "\n")

	for pass := 1; pass <= 2; pass++ {
		a.pass = pass
		a.textPC = 0
		a.textBase = isa.DefaultTextBase
		a.dataCursor = 0
		a.kernel = false
		a.section = secText
		a.insts = a.insts[:0]
		a.segments = nil
		a.curSeg = nil
		firstOrg := true
		_ = firstOrg
		for i, raw := range lines {
			a.lineNo = i + 1
			if err := a.line(raw); err != nil {
				return nil, err
			}
		}
	}

	p := &isa.Program{
		TextBase: a.textBase,
		Insts:    a.insts,
		Data:     a.segments,
		Symbols:  a.symbols,
	}
	p.Entry = p.TextBase
	if e, ok := a.symbols["main"]; ok {
		p.Entry = e
	} else if e, ok := a.symbols["_start"]; ok {
		p.Entry = e
	}
	return p, nil
}

// MustAssemble is Assemble but panics on error; for tests and built-in
// program generators whose source is statically known to be valid.
func MustAssemble(source string) *isa.Program {
	p, err := Assemble(source)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{Line: a.lineNo, Msg: fmt.Sprintf(format, args...)}
}

func stripComment(s string) string {
	if i := strings.Index(s, "#"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

func (a *assembler) here() uint64 {
	if a.section == secText {
		return a.textBase + a.textPC
	}
	return a.dataCursor
}

func (a *assembler) line(raw string) error {
	s := strings.TrimSpace(strings.ReplaceAll(stripComment(raw), "\t", " "))
	if s == "" {
		return nil
	}
	// Labels (possibly several) at line start.
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		name := strings.TrimSpace(s[:i])
		if !isIdent(name) {
			break // ':' belongs to something else (we have no such syntax, but be safe)
		}
		if a.pass == 1 {
			if _, dup := a.symbols[name]; dup {
				return a.errf("duplicate label %q", name)
			}
			a.symbols[name] = a.here()
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	if a.section != secText {
		return a.errf("instruction %q outside .text", s)
	}
	inst, err := a.instruction(s)
	if err != nil {
		return err
	}
	a.insts = append(a.insts, inst...)
	a.textPC += uint64(len(inst)) * isa.InstBytes
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ---- directives ----

func (a *assembler) directive(s string) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.section = secText
		return nil
	case ".data":
		a.section = secData
		a.curSeg = nil
		return nil
	case ".org":
		v, err := a.value(rest)
		if err != nil {
			return err
		}
		if a.section == secText {
			if len(a.insts) > 0 {
				return a.errf(".org in .text must precede all instructions")
			}
			a.textBase = v
		} else {
			a.dataCursor = v
			a.curSeg = nil
		}
		return nil
	case ".kernel":
		a.kernel = true
		a.curSeg = nil
		return nil
	case ".user":
		a.kernel = false
		a.curSeg = nil
		return nil
	case ".align":
		n, err := a.value(rest)
		if err != nil {
			return err
		}
		if n == 0 || n&(n-1) != 0 {
			return a.errf(".align requires a power of two, got %d", n)
		}
		if a.section != secData {
			return a.errf(".align only supported in .data")
		}
		a.dataCursor = (a.dataCursor + n - 1) &^ (n - 1)
		a.curSeg = nil
		return nil
	case ".space":
		n, err := a.value(rest)
		if err != nil {
			return err
		}
		if a.section != secData {
			return a.errf(".space only supported in .data")
		}
		a.dataCursor += n
		a.curSeg = nil
		return nil
	case ".byte":
		return a.emitList(rest, 1)
	case ".word32":
		return a.emitList(rest, 4)
	case ".word64":
		return a.emitList(rest, 8)
	case ".ascii", ".asciiz":
		if a.section != secData {
			return a.errf("%s only supported in .data", name)
		}
		str, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("%s: bad string %s: %v", name, rest, err)
		}
		b := []byte(str)
		if name == ".asciiz" {
			b = append(b, 0)
		}
		a.emitBytes(b)
		return nil
	default:
		return a.errf("unknown directive %q", name)
	}
}

func (a *assembler) emitList(rest string, size int) error {
	if a.section != secData {
		return a.errf("data directive outside .data")
	}
	if strings.TrimSpace(rest) == "" {
		return a.errf("empty value list")
	}
	for _, f := range splitOperands(rest) {
		v, err := a.value(f)
		if err != nil {
			return err
		}
		var buf [8]byte
		for i := 0; i < size; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		a.emitBytes(buf[:size])
	}
	return nil
}

func (a *assembler) emitBytes(b []byte) {
	if a.pass == 2 {
		if a.curSeg == nil {
			a.segments = append(a.segments, isa.Segment{Addr: a.dataCursor, Kernel: a.kernel})
			a.curSeg = &a.segments[len(a.segments)-1]
		}
		a.curSeg.Bytes = append(a.curSeg.Bytes, b...)
	}
	a.dataCursor += uint64(len(b))
}

// ---- operand parsing ----

// value evaluates an immediate expression: NUMBER | 'c' | SYMBOL | SYMBOL±NUMBER.
func (a *assembler) value(expr string) (uint64, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, a.errf("missing value")
	}
	if expr[0] == '\'' {
		r, err := strconv.Unquote(expr)
		if err != nil || len(r) != 1 {
			return 0, a.errf("bad character literal %s", expr)
		}
		return uint64(r[0]), nil
	}
	if n, err := parseNum(expr); err == nil {
		return n, nil
	}
	// SYMBOL, SYMBOL+N, SYMBOL-N (split at the last +/- that is not leading)
	sym, off := expr, int64(0)
	for i := 1; i < len(expr); i++ {
		if expr[i] == '+' || expr[i] == '-' {
			n, err := parseNum(expr[i+1:])
			if err != nil {
				return 0, a.errf("bad offset in %q", expr)
			}
			sym = strings.TrimSpace(expr[:i])
			off = int64(n)
			if expr[i] == '-' {
				off = -off
			}
			break
		}
	}
	if !isIdent(sym) {
		return 0, a.errf("bad value %q", expr)
	}
	addr, ok := a.symbols[sym]
	if !ok {
		if a.pass == 1 {
			return 0, nil // forward reference; resolved in pass 2
		}
		return 0, a.errf("undefined symbol %q", sym)
	}
	return addr + uint64(off), nil
}

func parseNum(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if neg {
		return uint64(-int64(v)), nil
	}
	return v, nil
}

var regAliases = map[string]isa.Reg{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7,
	"s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
	"s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
	"s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

func (a *assembler) reg(tok string) (isa.Reg, error) {
	tok = strings.TrimSpace(tok)
	if r, ok := regAliases[tok]; ok {
		return r, nil
	}
	if strings.HasPrefix(tok, "x") {
		if n, err := strconv.Atoi(tok[1:]); err == nil && n >= 0 && n < isa.NumGPR {
			return isa.Reg(n), nil
		}
	}
	return 0, a.errf("bad register %q", tok)
}

// memOperand parses "OFFSET(REG)" or "(REG)" or "SYMBOL(REG)".
func (a *assembler) memOperand(tok string) (off int64, base isa.Reg, err error) {
	tok = strings.TrimSpace(tok)
	open := strings.Index(tok, "(")
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return 0, 0, a.errf("bad memory operand %q (want off(reg))", tok)
	}
	base, err = a.reg(tok[open+1 : len(tok)-1])
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(tok[:open])
	if offStr == "" {
		return 0, base, nil
	}
	v, err := a.value(offStr)
	if err != nil {
		return 0, 0, err
	}
	return int64(v), base, nil
}

func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// ---- instructions ----

var rrrOps = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor,
	"sll": isa.OpSll, "srl": isa.OpSrl, "sra": isa.OpSra, "slt": isa.OpSlt, "sltu": isa.OpSltu,
	"mul": isa.OpMul, "div": isa.OpDiv, "rem": isa.OpRem,
}

var rriOps = map[string]isa.Op{
	"addi": isa.OpAddi, "andi": isa.OpAndi, "ori": isa.OpOri, "xori": isa.OpXori,
	"slli": isa.OpSlli, "srli": isa.OpSrli, "srai": isa.OpSrai,
	"slti": isa.OpSlti, "sltiu": isa.OpSltiu,
}

var loadOps = map[string]isa.Op{"ld": isa.OpLd, "lw": isa.OpLw, "lbu": isa.OpLbu}
var storeOps = map[string]isa.Op{"sd": isa.OpSd, "sw": isa.OpSw, "sb": isa.OpSb}
var branchOps = map[string]isa.Op{
	"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt, "bge": isa.OpBge,
	"bltu": isa.OpBltu, "bgeu": isa.OpBgeu,
}

// instruction assembles one mnemonic, possibly expanding to multiple µops
// (none of the current pseudo-ops do, but the signature allows it).
func (a *assembler) instruction(s string) ([]isa.Inst, error) {
	mn, rest, _ := strings.Cut(s, " ")
	mn = strings.ToLower(strings.TrimSpace(mn))
	ops := splitOperands(rest)
	if rest == "" {
		ops = nil
	}

	need := func(n int) error {
		if len(ops) != n {
			return a.errf("%s: want %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}

	switch {
	case rrrOps[mn] != isa.OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(ops[1])
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(ops[2])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: rrrOps[mn], Rd: rd, Rs1: rs1, Rs2: rs2}}, nil

	case rriOps[mn] != isa.OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(ops[1])
		if err != nil {
			return nil, err
		}
		imm, err := a.value(ops[2])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: rriOps[mn], Rd: rd, Rs1: rs1, Imm: int64(imm)}}, nil

	case loadOps[mn] != isa.OpInvalid:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: loadOps[mn], Rd: rd, Rs1: base, Imm: off}}, nil

	case storeOps[mn] != isa.OpInvalid:
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := a.reg(ops[0]) // data
		if err != nil {
			return nil, err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: storeOps[mn], Rs1: base, Rs2: rs2, Imm: off}}, nil

	case branchOps[mn] != isa.OpInvalid:
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(ops[1])
		if err != nil {
			return nil, err
		}
		tgt, err := a.value(ops[2])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: branchOps[mn], Rs1: rs1, Rs2: rs2, Imm: int64(tgt)}}, nil
	}

	switch mn {
	case "li", "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		imm, err := a.value(ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpLui, Rd: rd, Imm: int64(imm)}}, nil
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpAddi, Rd: rd, Rs1: rs1}}, nil
	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		tgt, err := a.value(ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJal, Rd: isa.RegZero, Imm: int64(tgt)}}, nil
	case "jal":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		tgt, err := a.value(ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJal, Rd: rd, Imm: int64(tgt)}}, nil
	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		tgt, err := a.value(ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJal, Rd: isa.RegRA, Imm: int64(tgt)}}, nil
	case "callr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJalr, Rd: isa.RegRA, Rs1: rs}}, nil
	case "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: rs}}, nil
	case "jalr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJalr, Rd: rd, Rs1: base, Imm: off}}, nil
	case "ret":
		if err := need(0); err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA}}, nil
	case "fence", "specoff", "specon", "nop", "halt":
		if err := need(0); err != nil {
			return nil, err
		}
		op := map[string]isa.Op{"fence": isa.OpFence, "specoff": isa.OpSpecOff,
			"specon": isa.OpSpecOn, "nop": isa.OpNop, "halt": isa.OpHalt}[mn]
		return []isa.Inst{{Op: op}}, nil
	case "rdcycle":
		if err := need(1); err != nil {
			return nil, err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpRdcycle, Rd: rd}}, nil
	case "rdmsr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(ops[0])
		if err != nil {
			return nil, err
		}
		msr, err := a.value(ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpRdmsr, Rd: rd, Imm: int64(msr)}}, nil
	case "wrmsr":
		if err := need(2); err != nil {
			return nil, err
		}
		msr, err := a.value(ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpWrmsr, Rs1: rs, Imm: int64(msr)}}, nil
	case "clflush":
		if err := need(1); err != nil {
			return nil, err
		}
		off, base, err := a.memOperand(ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpClflush, Rs1: base, Imm: off}}, nil
	}
	return nil, a.errf("unknown mnemonic %q", mn)
}
