package asm

import (
	"strings"
	"testing"

	"nda/internal/isa"
)

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
        .text
main:   li   t0, 123
        addi t1, t0, -1
        add  t2, t0, t1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 4 {
		t.Fatalf("got %d instructions", len(p.Insts))
	}
	if p.Entry != p.TextBase {
		t.Errorf("entry = %#x, want text base %#x", p.Entry, p.TextBase)
	}
	if p.Insts[0].Op != isa.OpLui || p.Insts[0].Imm != 123 || p.Insts[0].Rd != isa.RegT0 {
		t.Errorf("li lowered to %+v", p.Insts[0])
	}
	if p.Insts[1].Imm != -1 {
		t.Errorf("negative immediate = %d", p.Insts[1].Imm)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p, err := Assemble(`
main:   li   t0, 10
loop:   addi t0, t0, -1
        bne  t0, zero, loop
        beq  t0, zero, done
        nop
done:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	loopAddr := p.MustSymbol("loop")
	if loopAddr != p.TextBase+4 {
		t.Errorf("loop = %#x", loopAddr)
	}
	if uint64(p.Insts[2].Imm) != loopAddr {
		t.Errorf("backward branch target = %#x", p.Insts[2].Imm)
	}
	if uint64(p.Insts[3].Imm) != p.MustSymbol("done") {
		t.Errorf("forward branch target = %#x", p.Insts[3].Imm)
	}
}

func TestCallRetPseudoOps(t *testing.T) {
	p, err := Assemble(`
main:   call func
        halt
func:   ret
`)
	if err != nil {
		t.Fatal(err)
	}
	call := p.Insts[0]
	if call.Op != isa.OpJal || call.Rd != isa.RegRA || uint64(call.Imm) != p.MustSymbol("func") {
		t.Errorf("call = %+v", call)
	}
	if !call.IsCall() {
		t.Error("call must satisfy IsCall")
	}
	ret := p.Insts[2]
	if !ret.IsReturn() {
		t.Errorf("ret = %+v", ret)
	}
}

func TestMemoryOperands(t *testing.T) {
	p, err := Assemble(`
main:   ld  t0, 16(sp)
        sd  t0, -8(s0)
        lbu t1, (a0)
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Rs1 != isa.RegSP || p.Insts[0].Imm != 16 {
		t.Errorf("ld = %+v", p.Insts[0])
	}
	if p.Insts[1].Rs2 != isa.RegT0 || p.Insts[1].Imm != -8 {
		t.Errorf("sd = %+v", p.Insts[1])
	}
	if p.Insts[2].Imm != 0 || p.Insts[2].Rs1 != isa.RegA0 {
		t.Errorf("lbu = %+v", p.Insts[2])
	}
}

func TestDataSegments(t *testing.T) {
	p, err := Assemble(`
        .data
        .org 0x10000
vals:   .word64 1, 2, deadend
small:  .byte 0xAB, 'x'
str:    .asciiz "hi"
        .align 16
buf:    .space 32
after:  .byte 1
        .text
main:   halt
deadend: nop
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.MustSymbol("vals") != 0x10000 {
		t.Errorf("vals = %#x", p.MustSymbol("vals"))
	}
	seg := p.Data[0]
	if seg.Addr != 0x10000 || len(seg.Bytes) < 24 {
		t.Fatalf("segment = %+v", seg)
	}
	if seg.Bytes[0] != 1 || seg.Bytes[8] != 2 {
		t.Error(".word64 layout wrong")
	}
	// Third word64 is the forward-referenced text label.
	var w uint64
	for i := 0; i < 8; i++ {
		w |= uint64(seg.Bytes[16+i]) << (8 * i)
	}
	if w != p.MustSymbol("deadend") {
		t.Errorf("label in data = %#x, want %#x", w, p.MustSymbol("deadend"))
	}
	if seg.Bytes[24] != 0xAB || seg.Bytes[25] != 'x' {
		t.Error(".byte layout wrong")
	}
	if seg.Bytes[26] != 'h' || seg.Bytes[27] != 'i' || seg.Bytes[28] != 0 {
		t.Error(".asciiz layout wrong")
	}
	// .align 16 starts a new segment.
	if p.MustSymbol("buf")%16 != 0 {
		t.Errorf("buf not aligned: %#x", p.MustSymbol("buf"))
	}
	if p.MustSymbol("after") != p.MustSymbol("buf")+32 {
		t.Error(".space must advance the cursor")
	}
}

func TestKernelData(t *testing.T) {
	p, err := Assemble(`
        .data
        .org 0x20000
pub:    .word64 1
        .kernel
secret: .byte 42
        .user
pub2:   .byte 7
        .text
main:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	var sawKernel, sawUser int
	for _, s := range p.Data {
		if s.Kernel {
			sawKernel++
			if s.Bytes[0] != 42 {
				t.Error("kernel segment content wrong")
			}
		} else {
			sawUser++
		}
	}
	if sawKernel != 1 || sawUser != 2 {
		t.Errorf("segments: kernel=%d user=%d", sawKernel, sawUser)
	}
}

func TestSymbolArithmetic(t *testing.T) {
	p, err := Assemble(`
        .data
        .org 0x4000
tbl:    .space 64
        .text
main:   la t0, tbl+8
        li t1, tbl-4
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p.Insts[0].Imm) != 0x4008 {
		t.Errorf("tbl+8 = %#x", p.Insts[0].Imm)
	}
	if uint64(p.Insts[1].Imm) != 0x3FFC {
		t.Errorf("tbl-4 = %#x", p.Insts[1].Imm)
	}
}

func TestSystemOps(t *testing.T) {
	p, err := Assemble(`
main:   rdcycle t0
        rdmsr   t1, 0x10
        wrmsr   0x3, t1
        clflush 64(a0)
        fence
        specoff
        specon
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Op{isa.OpRdcycle, isa.OpRdmsr, isa.OpWrmsr, isa.OpClflush,
		isa.OpFence, isa.OpSpecOff, isa.OpSpecOn, isa.OpHalt}
	for i, op := range want {
		if p.Insts[i].Op != op {
			t.Errorf("inst %d = %v, want %v", i, p.Insts[i].Op, op)
		}
	}
	if p.Insts[1].Imm != 0x10 || p.Insts[2].Imm != 0x3 {
		t.Error("MSR numbers wrong")
	}
	if p.Insts[3].Imm != 64 || p.Insts[3].Rs1 != isa.RegA0 {
		t.Error("clflush operand wrong")
	}
}

func TestJumpVariants(t *testing.T) {
	p, err := Assemble(`
main:   j     skip
        nop
skip:   jal   s0, main
        jalr  t0, 8(a1)
        jr    a2
        callr a3
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.OpJal || p.Insts[0].Rd != isa.RegZero {
		t.Errorf("j = %+v", p.Insts[0])
	}
	if p.Insts[2].Rd != isa.RegS0 {
		t.Errorf("jal = %+v", p.Insts[2])
	}
	if p.Insts[3].Imm != 8 || p.Insts[3].Rs1 != isa.RegA1 || p.Insts[3].Rd != isa.RegT0 {
		t.Errorf("jalr = %+v", p.Insts[3])
	}
	if p.Insts[4].Rd != isa.RegZero || p.Insts[4].Rs1 != isa.RegA2 {
		t.Errorf("jr = %+v", p.Insts[4])
	}
	if !p.Insts[5].IsCall() {
		t.Errorf("callr = %+v", p.Insts[5])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"main: halt\nmain: nop", "duplicate label"},
		{"bogus t0, t1", "unknown mnemonic"},
		{"add t0, t1", "want 3 operands"},
		{"li t9, 5", "bad register"},
		{"ld t0, 8[sp]", "bad memory operand"},
		{"beq t0, t1, nowhere", "undefined symbol"},
		{".bogus 3", "unknown directive"},
		{".text\n.byte 1", "outside .data"},
		{"nop\n.org 0x5000", ".org in .text must precede"},
		{".data\n.align 3", "power of two"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus x")
	aerr, ok := err.(*Error)
	if !ok || aerr.Line != 3 {
		t.Errorf("error = %v, want line 3", err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	p, err := Assemble("main:\thalt # trailing\n// whole line\n   # another\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 1 {
		t.Errorf("got %d instructions", len(p.Insts))
	}
}

func TestEntryStart(t *testing.T) {
	p := MustAssemble("_start: nop\nhalt")
	if p.Entry != p.TextBase {
		t.Error("_start entry")
	}
	p = MustAssemble("pad: nop\nmain: halt")
	if p.Entry != p.TextBase+4 {
		t.Error("main entry must win")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble must panic on bad source")
		}
	}()
	MustAssemble("bogus")
}

func TestRegisterAliases(t *testing.T) {
	p := MustAssemble("main: add x5, t0, x31\nhalt")
	i := p.Insts[0]
	if i.Rd != 5 || i.Rs1 != 5 || i.Rs2 != 31 {
		t.Errorf("aliases = %+v", i)
	}
}

func TestMoreErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"add t9, t1, t2", "bad register"},
		{"add t0, t9, t2", "bad register"},
		{"add t0, t1, t9", "bad register"},
		{"addi t0, t9, 1", "bad register"},
		{"addi t0, t1, bogus", "undefined symbol"},
		{"ld t9, 8(sp)", "bad register"},
		{"ld t0, 8(t9)", "bad register"},
		{"sd t9, 8(sp)", "bad register"},
		{"beq t9, t0, main", "bad register"},
		{"beq t0, t9, main", "bad register"},
		{"li t9, 1", "bad register"},
		{"mv t9, t0", "bad register"},
		{"mv t0, t9", "bad register"},
		{"j 8(sp)", "bad value"},
		{"jal t9, main", "bad register"},
		{"callr t9", "bad register"},
		{"jr t9", "bad register"},
		{"jalr t9, (sp)", "bad register"},
		{"jalr t0, 8[t1]", "bad memory operand"},
		{"rdcycle t9", "bad register"},
		{"rdmsr t9, 1", "bad register"},
		{"rdmsr t0, zork", "undefined symbol"},
		{"wrmsr zork, t0", "undefined symbol"},
		{"wrmsr 1, t9", "bad register"},
		{"clflush t0", "bad memory operand"},
		{"fence extra", "want 0 operands"},
		{"li t0", "want 2 operands"},
		{".org zork", "undefined symbol"},
		{".data\n.space zork", "undefined symbol"},
		{".data\n.byte", "empty value list"},
		{".data\n.byte 1+zork", "bad offset"},
		{".data\n.ascii 5", "bad string"},
		{".data\n.byte 'ab'", "bad character literal"},
		{"main: ld t0, zork(t1)", "undefined symbol"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestValueForms(t *testing.T) {
	p := MustAssemble(`
        .data
        .org 0x100
c:      .byte 'A'
        .text
main:   li t0, 'z'
        li t1, -0x10
        li t2, 0xFFFFFFFFFFFFFFFF
        halt
`)
	if p.Insts[0].Imm != 'z' {
		t.Errorf("char literal = %d", p.Insts[0].Imm)
	}
	if p.Insts[1].Imm != -16 {
		t.Errorf("negative hex = %d", p.Insts[1].Imm)
	}
	if uint64(p.Insts[2].Imm) != ^uint64(0) {
		t.Errorf("max u64 = %#x", uint64(p.Insts[2].Imm))
	}
	if p.Data[0].Bytes[0] != 'A' {
		t.Error(".byte char literal")
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	p := MustAssemble("a: b: main: halt")
	if p.MustSymbol("a") != p.MustSymbol("b") || p.MustSymbol("b") != p.MustSymbol("main") {
		t.Error("stacked labels must share an address")
	}
}

func TestWord32Directive(t *testing.T) {
	p := MustAssemble(`
        .data
        .org 0x400
w:      .word32 0x11223344, 0x55667788
        .text
main:   halt
`)
	b := p.Data[0].Bytes
	if b[0] != 0x44 || b[3] != 0x11 || b[4] != 0x88 || b[7] != 0x55 {
		t.Errorf("word32 layout = % x", b)
	}
}
