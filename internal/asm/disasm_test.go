package asm

import (
	"strings"
	"testing"

	"nda/internal/isa"
	"nda/internal/workload"
)

func roundTrip(t *testing.T, p *isa.Program) *isa.Program {
	t.Helper()
	src := Disassemble(p)
	q, err := Assemble(src)
	if err != nil {
		t.Fatalf("reassembly failed: %v\nsource:\n%s", err, firstLines(src, 40))
	}
	return q
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func assertSameProgram(t *testing.T, p, q *isa.Program) {
	t.Helper()
	if q.TextBase != p.TextBase || q.Entry != p.Entry {
		t.Fatalf("base/entry: got %#x/%#x, want %#x/%#x", q.TextBase, q.Entry, p.TextBase, p.Entry)
	}
	if len(q.Insts) != len(p.Insts) {
		t.Fatalf("instruction count: got %d, want %d", len(q.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		if p.Insts[i] != q.Insts[i] {
			t.Fatalf("inst %d: got %+v, want %+v", i, q.Insts[i], p.Insts[i])
		}
	}
	// Compare data as an address->byte map (segment boundaries may differ).
	want := map[uint64]byte{}
	wantKernel := map[uint64]bool{}
	for _, s := range p.Data {
		for i, b := range s.Bytes {
			want[s.Addr+uint64(i)] = b
			wantKernel[s.Addr+uint64(i)] = s.Kernel
		}
	}
	got := map[uint64]byte{}
	gotKernel := map[uint64]bool{}
	for _, s := range q.Data {
		for i, b := range s.Bytes {
			got[s.Addr+uint64(i)] = b
			gotKernel[s.Addr+uint64(i)] = s.Kernel
		}
	}
	if len(got) != len(want) {
		t.Fatalf("data bytes: got %d, want %d", len(got), len(want))
	}
	for a, b := range want {
		if got[a] != b {
			t.Fatalf("data[%#x] = %#x, want %#x", a, got[a], b)
		}
		if gotKernel[a] != wantKernel[a] {
			t.Fatalf("data[%#x] kernel = %v, want %v", a, gotKernel[a], wantKernel[a])
		}
	}
}

func TestDisassembleRoundTripHandwritten(t *testing.T) {
	p := MustAssemble(`
        .data
        .org 0x20000
vals:   .word64 1, 0xdeadbeef
        .kernel
sec:    .byte 42
        .user
pub:    .byte 7
        .text
pad:    nop
main:   li   t0, -5
        la   s0, vals
        ld   t1, 8(s0)
        sd   t1, 16(s0)
        lbu  t2, (s0)
        sb   t2, 1(s0)
        lw   t3, 4(s0)
        sw   t3, 4(s0)
        beq  t1, t2, main
        bltu t1, t2, main
        jal  s1, main
        call main
        jalr t0, 4(s0)
        jr   ra
        ret
        rdcycle t4
        rdmsr t5, 0x3
        wrmsr 0x3, t5
        clflush 8(s0)
        fence
        specoff
        specon
        addi t6, t6, -1
        srai t6, t6, 3
        div  t6, t6, t5
        halt
`)
	assertSameProgram(t, p, roundTrip(t, p))
}

func TestDisassembleRoundTripRandom(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := workload.Random(seed, 150)
		assertSameProgram(t, p, roundTrip(t, p))
	}
}

func TestDisassembleRoundTripWorkloads(t *testing.T) {
	// Small-data proxies only: the big-table benchmarks round-trip too but
	// re-parsing megabytes of .byte directives is slow.
	for _, name := range []string{"exchange2", "xz", "x264", "povray"} {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(s.Name, func(t *testing.T) {
			p := s.Build(2)
			assertSameProgram(t, p, roundTrip(t, p))
		})
	}
}

func TestDisassembleReadable(t *testing.T) {
	p := MustAssemble("main: li t0, 7\nadd t1, t0, t0\nhalt")
	src := Disassemble(p)
	for _, want := range []string{".text", ".org 0x1000", "main:", "li x5, 7", "add x6, x5, x5", "halt"} {
		if !strings.Contains(src, want) {
			t.Errorf("disassembly missing %q:\n%s", want, src)
		}
	}
}
