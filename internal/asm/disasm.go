package asm

import (
	"fmt"
	"strings"

	"nda/internal/isa"
)

// Disassemble renders a program back into assembler source accepted by
// Assemble. The round trip Assemble(Disassemble(p)) reproduces p exactly:
// same text base, instructions, entry point, and data bytes (segment
// boundaries may be merged). Labels are synthesized only where needed (the
// entry point); branch and jump targets are emitted as absolute addresses,
// which the assembler accepts directly.
func Disassemble(p *isa.Program) string {
	var b strings.Builder

	b.WriteString("        .text\n")
	fmt.Fprintf(&b, "        .org 0x%x\n", p.TextBase)
	for i, inst := range p.Insts {
		pc := p.TextBase + uint64(i)*isa.InstBytes
		if pc == p.Entry {
			b.WriteString("main:\n")
		}
		fmt.Fprintf(&b, "        %s\n", instSyntax(inst))
	}

	if len(p.Data) > 0 {
		b.WriteString("\n        .data\n")
		kernel := false
		for _, seg := range p.Data {
			if seg.Kernel != kernel {
				if seg.Kernel {
					b.WriteString("        .kernel\n")
				} else {
					b.WriteString("        .user\n")
				}
				kernel = seg.Kernel
			}
			fmt.Fprintf(&b, "        .org 0x%x\n", seg.Addr)
			for off := 0; off < len(seg.Bytes); off += 16 {
				end := off + 16
				if end > len(seg.Bytes) {
					end = len(seg.Bytes)
				}
				b.WriteString("        .byte ")
				for i := off; i < end; i++ {
					if i > off {
						b.WriteString(", ")
					}
					fmt.Fprintf(&b, "0x%02x", seg.Bytes[i])
				}
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

// instSyntax renders one instruction in re-assemblable form. It matches
// isa.Inst.String except for the few cases where the display form is not
// valid assembler input.
func instSyntax(i isa.Inst) string {
	switch i.Op {
	case isa.OpJal:
		// isa.Inst.String prints "jal" for all link registers; the
		// assembler's "jal rd, target" form covers every case.
		return fmt.Sprintf("jal %s, 0x%x", i.Rd, uint64(i.Imm))
	case isa.OpLui:
		// "li rd, imm" with the immediate printed as signed decimal, which
		// the assembler parses back into the same 64-bit pattern.
		return fmt.Sprintf("li %s, %d", i.Rd, i.Imm)
	default:
		return i.String()
	}
}
