package asm_test

import (
	"testing"

	"nda/internal/asm"
	"nda/internal/attack"
	"nda/internal/isa"
	"nda/internal/workload"
)

// flattenData projects a program's data segments onto address→byte and
// address→kernel maps, so the comparison tolerates the one transformation
// Disassemble documents: adjacent segments may merge.
func flattenData(p *isa.Program) (map[uint64]byte, map[uint64]bool) {
	data := map[uint64]byte{}
	kernel := map[uint64]bool{}
	for _, seg := range p.Data {
		for i, b := range seg.Bytes {
			a := seg.Addr + uint64(i)
			data[a] = b
			kernel[a] = seg.Kernel
		}
	}
	return data, kernel
}

// checkRoundTrip asserts Assemble(Disassemble(p)) reproduces p: text base,
// entry point, every instruction, and every data byte with its privilege.
func checkRoundTrip(t *testing.T, name string, p *isa.Program) {
	t.Helper()
	src := asm.Disassemble(p)
	q, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("%s: reassembling disassembly: %v", name, err)
	}
	if q.TextBase != p.TextBase || q.Entry != p.Entry {
		t.Fatalf("%s: base/entry %#x/%#x, want %#x/%#x", name, q.TextBase, q.Entry, p.TextBase, p.Entry)
	}
	if len(q.Insts) != len(p.Insts) {
		t.Fatalf("%s: %d instructions, want %d", name, len(q.Insts), len(p.Insts))
	}
	for i := range p.Insts {
		if p.Insts[i] != q.Insts[i] {
			t.Fatalf("%s: instruction %d at %#x: got %v, want %v",
				name, i, p.TextBase+uint64(i)*isa.InstBytes, q.Insts[i], p.Insts[i])
		}
	}
	pd, pk := flattenData(p)
	qd, qk := flattenData(q)
	if len(pd) != len(qd) {
		t.Fatalf("%s: %d data bytes, want %d", name, len(qd), len(pd))
	}
	for a, b := range pd {
		if qd[a] != b {
			t.Fatalf("%s: data byte at %#x: got %#x, want %#x", name, a, qd[a], b)
		}
		if qk[a] != pk[a] {
			t.Fatalf("%s: data byte at %#x: kernel=%v, want %v", name, a, qk[a], pk[a])
		}
	}
}

// TestAttackSnippetRoundTrip round-trips every attack PoC, data included —
// these are the programs ndalint and the attack matrix disagree over if the
// encoding drifts.
func TestAttackSnippetRoundTrip(t *testing.T) {
	for _, k := range attack.All() {
		p, err := attack.Program(k)
		if err != nil {
			t.Fatal(err)
		}
		checkRoundTrip(t, string(k), p)
	}
}

// TestWorkloadKernelRoundTrip round-trips every workload kernel. Kernels
// with large generated data images (some carry multi-megabyte pointer-chase
// arenas) are round-tripped text-only: byte-listing them would dominate the
// test for no extra instruction coverage.
func TestWorkloadKernelRoundTrip(t *testing.T) {
	const maxDataBytes = 1 << 20
	for _, s := range workload.All() {
		p := s.Build(2)
		total := 0
		for _, seg := range p.Data {
			total += len(seg.Bytes)
		}
		if total > maxDataBytes {
			textOnly := &isa.Program{TextBase: p.TextBase, Insts: p.Insts, Entry: p.Entry}
			checkRoundTrip(t, s.Name+" (text only)", textOnly)
			continue
		}
		checkRoundTrip(t, s.Name, p)
	}
}
