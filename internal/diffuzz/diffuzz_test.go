package diffuzz

import (
	"reflect"
	"testing"

	"nda/internal/progen"
)

// fuzzSeedCount is the tier-1 sweep size; -short trims it for quick edits.
func fuzzSeedCount(t *testing.T) int {
	if testing.Short() {
		return 250
	}
	return 2500
}

// TestDifferentialSoundness is the tentpole cross-validation: over the full
// sweep, no program the analyzer certifies SAFE under any policy may show a
// secret-dependent channel trace, no program may be architecturally
// secret-dependent, and the pipeline sanitizer must stay silent. The
// efficacy checks below it make the sweep falsifiable: every gadget kind
// must both appear and actually leak dynamically on the insecure baseline,
// so a generator regression cannot hollow out the soundness claim.
func TestDifferentialSoundness(t *testing.T) {
	s := Fuzz(Seeds(1, fuzzSeedCount(t)), 0)
	if s.Failed > 0 {
		t.Fatalf("%d/%d programs failed:\n%s", s.Failed, s.Programs, s)
	}
	for _, c := range s.Policies {
		if c.Unsound != 0 {
			t.Errorf("%s: %d soundness violations", c.Policy, c.Unsound)
		}
	}

	for _, k := range progen.GadgetKinds {
		if s.KindTotal[k] == 0 {
			t.Errorf("gadget kind %s never generated", k)
		} else if s.KindLeakOoO[k] == 0 {
			t.Errorf("gadget kind %s: %d programs, none leak under OoO — generator lost its teeth",
				k, s.KindTotal[k])
		}
	}
	for _, k := range progen.SafeKinds {
		if s.KindTotal[k] == 0 {
			t.Errorf("safe kind %s never generated", k)
		}
	}

	// The sweep must exercise both sides of every verdict: programs the
	// analyzer certifies safe AND programs it flags, under the extreme
	// policies at least.
	for _, c := range s.Policies {
		switch c.Policy {
		case "OoO":
			if c.StaticSafe == 0 || c.TruePositive == 0 {
				t.Errorf("OoO census degenerate: %+v", c)
			}
		case "FullProtection", "RestrictedLoads":
			// Everything the generator emits is load-carried, so the
			// load-restriction policies must block all of it.
			if c.DynamicLeak != 0 {
				t.Errorf("%s: %d dynamic leaks, want 0", c.Policy, c.DynamicLeak)
			}
		case "InvisiSpec-Future":
			// The d-cache is invisible until retirement but the BTB is
			// not: steering-BTB programs must still get through.
			if c.DynamicLeak == 0 {
				t.Errorf("InvisiSpec-Future: no dynamic leaks; BTB channel lost")
			}
		}
	}
}

// A single-fragment chosen-memory program is the historical blind spot:
// the secret is laundered through a store-to-load pair outside any branch
// guard, so only the memory taint cell connects source to transmitter.
// Pin that at least one such program exists in the sweep range and that
// the analyzer flags it while the dynamic run confirms the leak.
func TestChosenMemoryBlindSpotCovered(t *testing.T) {
	found := false
	for seed := int64(1); seed < 3000 && !found; seed++ {
		p, err := progen.Gen(seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Frags) != 1 || p.Frags[0] != progen.FragChosenMemory {
			continue
		}
		found = true
		r := RunSeed(seed)
		if r.Failure != "" {
			t.Fatalf("seed %d: %s", seed, r.Failure)
		}
		pr := r.PerPolicy["OoO"]
		if pr.StaticSafe {
			t.Errorf("seed %d: chosen-memory program certified safe under OoO — memory taint lost", seed)
		}
		if !pr.DynamicLeak {
			t.Errorf("seed %d: chosen-memory program does not leak dynamically under OoO", seed)
		}
	}
	if !found {
		t.Skip("no single-fragment chosen-memory program in range")
	}
}

// Aggregation must be bit-identical for any worker count (the par contract).
func TestFuzzWorkerCountInvariant(t *testing.T) {
	seeds := Seeds(100, 40)
	a := Fuzz(seeds, 1)
	b := Fuzz(seeds, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("summaries differ across worker counts:\n1: %s\n4: %s", a, b)
	}
}
