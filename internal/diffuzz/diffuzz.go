// Package diffuzz differentially fuzzes the static gadget analyzer against
// the out-of-order timing core. For every generated program (internal/progen)
// it computes the analyzer's per-policy verdict and then measures the ground
// truth dynamically: the program runs twice per policy with different planted
// secrets, and an attacker-observable channel trace (d-cache fills, flushes,
// InvisiSpec exposures, BTB updates — ooo.ChannelEvent) is recorded for each
// run. Because generated programs are architecturally secret-independent by
// construction (verified here against the reference emulator), any trace
// difference is a transient leak.
//
// The soundness contract is one-sided: if the analyzer certifies a program
// SAFE under a policy (no unblocked d-cache or BTB gadget) the traces must
// be identical under that policy. A disagreement is a hard failure — either
// the analyzer missed a gadget or the pipeline propagated an unsafe value —
// and the harness reports the seed, fragment kinds, and policy so the case
// replays with a one-line test. The reverse direction (static gadget, no
// dynamic leak) is expected and measured: the analyzer is deliberately
// conservative, and the per-policy precision census quantifies by how much.
//
// Every timing run also carries the pipeline's propagation sanitizer
// (ooo.Params.Sanitize), so the fuzz sweep doubles as a randomized search
// for NDA-invariant violations in the pipeline itself.
package diffuzz

import (
	"fmt"
	"sort"
	"strings"

	"nda/internal/core"
	"nda/internal/emu"
	"nda/internal/gadget"
	"nda/internal/isa"
	"nda/internal/mem"
	"nda/internal/ooo"
	"nda/internal/par"
	"nda/internal/progen"
)

const (
	// secretA/secretB fill the planted secret regions; they differ in
	// every bit the generator's transmit masks (1/3/7) can select.
	secretA = 0xA5
	secretB = 0x5A

	// msrSecretA/msrSecretB are the planted values of the privileged MSR.
	// They are user-space addresses on distinct cache lines, because the
	// chosen-msr fragment dereferences the MSR value directly.
	msrSecretA = 0x200100
	msrSecretB = 0x204180

	// cycleCap bounds one timing run; generated programs finish in a few
	// thousand cycles, so hitting the cap is a generator or pipeline bug.
	cycleCap = 300000
	// instCap bounds one architectural run.
	instCap = 100000

	maxFailures = 10
)

// PolicyResult is the static/dynamic comparison for one program, one policy.
type PolicyResult struct {
	// StaticSafe is the analyzer's certificate: no unblocked gadget on a
	// dynamically observable channel (d-cache, BTB). Advisory
	// branch-channel gadgets are excluded exactly because the dynamic
	// oracle cannot observe a directional-predictor channel.
	StaticSafe bool
	// DynamicLeak is the ground truth: channel traces differed.
	DynamicLeak bool
}

// Result is the outcome for one seed.
type Result struct {
	Seed  int64
	Frags []string
	// PerPolicy maps policy name → comparison.
	PerPolicy map[string]PolicyResult
	// SanViolations sums pipeline-sanitizer findings over all runs.
	SanViolations uint64
	// Failure is non-empty on any hard failure: generation error,
	// architectural secret-dependence, runtime error, sanitizer finding,
	// or a soundness violation (static SAFE, dynamic leak).
	Failure string
}

// RunSeed generates and differentially tests one seed.
func RunSeed(seed int64) *Result {
	r := &Result{Seed: seed, PerPolicy: map[string]PolicyResult{}}
	p, err := progen.Gen(seed)
	if err != nil {
		r.Failure = err.Error()
		return r
	}
	r.Frags = p.Frags

	an := gadget.Analyze(p.Prog, gadget.Config{})

	// Architectural independence: the reference emulator must execute the
	// identical instruction/address stream and reach the same final state
	// under both secret vectors. This validates the generator discipline
	// the soundness argument rests on.
	archA, errA := runArch(p, secretA, msrSecretA)
	archB, errB := runArch(p, secretB, msrSecretB)
	if errA != nil || errB != nil {
		r.Failure = fmt.Sprintf("%s: architectural run failed: %v / %v", p.Name, errA, errB)
		return r
	}
	if d := archA.diff(archB); d != "" {
		r.Failure = fmt.Sprintf("%s (%s): architecturally secret-dependent: %s",
			p.Name, strings.Join(p.Frags, "+"), d)
		return r
	}

	for _, pol := range core.All() {
		trA, sanA, errA := runTiming(p, pol, secretA, msrSecretA)
		trB, sanB, errB := runTiming(p, pol, secretB, msrSecretB)
		r.SanViolations += sanA + sanB
		if errA != nil || errB != nil {
			r.Failure = fmt.Sprintf("%s under %s: timing run failed: %v / %v", p.Name, pol.Name, errA, errB)
			return r
		}
		pr := PolicyResult{
			StaticSafe:  !an.Leaks[pol.Name],
			DynamicLeak: !tracesEqual(trA, trB),
		}
		r.PerPolicy[pol.Name] = pr
		if sanA+sanB > 0 {
			r.Failure = fmt.Sprintf("%s under %s: %d propagation-sanitizer violations",
				p.Name, pol.Name, sanA+sanB)
			return r
		}
		if pr.StaticSafe && pr.DynamicLeak {
			r.Failure = fmt.Sprintf("SOUNDNESS: %s (%s) certified safe under %s but channel traces differ (%d vs %d events): %s",
				p.Name, strings.Join(p.Frags, "+"), pol.Name, len(trA), len(trB), traceDiff(trA, trB))
			return r
		}
	}
	return r
}

// archRun captures one reference-emulator execution.
type archRun struct {
	steps   []emu.StepInfo
	regs    [isa.NumGPR]uint64
	retired uint64
	faults  uint64
}

func (a *archRun) diff(b *archRun) string {
	if a.retired != b.retired || a.faults != b.faults {
		return fmt.Sprintf("retired %d/%d faults %d/%d", a.retired, b.retired, a.faults, b.faults)
	}
	if a.regs != b.regs {
		return "final register state differs"
	}
	for i := range a.steps {
		if a.steps[i] != b.steps[i] {
			return fmt.Sprintf("step %d: pc=%#x addr=%#x vs pc=%#x addr=%#x",
				i, a.steps[i].PC, a.steps[i].MemAddr, b.steps[i].PC, b.steps[i].MemAddr)
		}
	}
	return ""
}

func runArch(p *progen.Program, secret byte, msrSecret uint64) (*archRun, error) {
	m := emu.New(p.Prog)
	plant(m.Mem, secret)
	m.MSR[isa.MSRSecretKey] = msrSecret
	r := &archRun{}
	for !m.Halted {
		if r.retired >= instCap {
			return nil, fmt.Errorf("exceeded %d instructions", instCap)
		}
		if err := m.Step(); err != nil {
			return nil, err
		}
		// Values never enter the record: only the instruction/address
		// stream and the final state must be secret-independent.
		info := m.Last
		info.Inst = isa.Inst{}
		r.steps = append(r.steps, info)
		r.retired = m.Retired
	}
	r.regs = m.Regs
	r.faults = m.Faults
	return r, nil
}

func runTiming(p *progen.Program, pol core.Policy, secret byte, msrSecret uint64) ([]ooo.ChannelEvent, uint64, error) {
	params := ooo.DefaultParams()
	params.Sanitize = true
	c := ooo.NewFromProgram(p.Prog, pol, params)
	plant(c.Memory(), secret)
	c.SetMSR(isa.MSRSecretKey, msrSecret)
	// Warm the secret lines so wrong-path dependence chains outrun their
	// guard's DRAM miss; each region is a single cache line. The warming
	// accesses go straight to the hierarchy, before tracing starts.
	c.Hierarchy().Data(progen.SecretBase)
	c.Hierarchy().Data(progen.StaleBase)
	c.Hierarchy().Data(progen.KSecretBase)
	var evs []ooo.ChannelEvent
	c.TraceChannel = func(ev ooo.ChannelEvent) { evs = append(evs, ev) }
	if err := c.Run(cycleCap); err != nil {
		return nil, c.SanitizerViolations(), err
	}
	return evs, c.SanitizerViolations(), nil
}

// plant writes the secret fill byte over every planted region. The stale
// region holds the same vector: its read byte is architecturally
// overwritten before use, so only a bypassing load can observe it.
func plant(m *mem.Memory, secret byte) {
	fill := make([]byte, progen.SecretBytes)
	for i := range fill {
		fill[i] = secret
	}
	m.StoreBytes(progen.SecretBase, fill)
	m.StoreBytes(progen.StaleBase, fill)
	m.StoreBytes(progen.KSecretBase, fill)
}

func tracesEqual(a, b []ooo.ChannelEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// traceDiff renders the first divergent event pair for failure reports.
func traceDiff(a, b []ooo.ChannelEvent) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("prefix equal through %d events", n)
}

// PolicyCensus aggregates one policy's precision over a sweep.
type PolicyCensus struct {
	Policy        string `json:"policy"`
	StaticSafe    int    `json:"static_safe"`
	DynamicLeak   int    `json:"dynamic_leak"`
	TruePositive  int    `json:"true_positive"`  // static unsafe, dynamic leak
	FalsePositive int    `json:"false_positive"` // static unsafe, dynamic clean
	Unsound       int    `json:"unsound"`        // static safe, dynamic leak — must be zero
}

// Summary aggregates a sweep.
type Summary struct {
	Programs int      `json:"programs"`
	Failed   int      `json:"failed"`
	Failures []string `json:"failures,omitempty"` // capped at maxFailures
	// Policies holds one census per policy, in core.All() order.
	Policies []PolicyCensus `json:"policies"`
	// KindTotal counts programs containing each fragment kind;
	// KindLeakOoO counts how many of those leak dynamically under the
	// insecure baseline — the generator-efficacy measure.
	KindTotal   map[string]int `json:"kind_total"`
	KindLeakOoO map[string]int `json:"kind_leak_ooo"`
}

// Seeds expands a base seed into n consecutive seeds.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Fuzz runs the differential harness over the given seeds on the given
// worker count (par.Workers semantics). Results aggregate identically for
// any worker count.
func Fuzz(seeds []int64, workers int) *Summary {
	results := make([]*Result, len(seeds))
	// Job errors are recorded per-slot, never returned: one bad seed must
	// not mask the rest of the sweep.
	_ = par.Run(len(seeds), par.Workers(workers), func(i int) error {
		results[i] = RunSeed(seeds[i])
		return nil
	})
	return Summarize(results)
}

// Summarize folds per-seed results into a Summary.
func Summarize(results []*Result) *Summary {
	s := &Summary{
		Programs:    len(results),
		KindTotal:   map[string]int{},
		KindLeakOoO: map[string]int{},
	}
	all := core.All()
	s.Policies = make([]PolicyCensus, len(all))
	byPolicy := map[string]*PolicyCensus{}
	for i, pol := range all {
		s.Policies[i] = PolicyCensus{Policy: pol.Name}
		byPolicy[pol.Name] = &s.Policies[i]
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Failure != "" {
			s.Failed++
			if len(s.Failures) < maxFailures {
				s.Failures = append(s.Failures, r.Failure)
			}
			continue
		}
		for name, pr := range r.PerPolicy {
			c := byPolicy[name]
			if c == nil {
				continue
			}
			if pr.StaticSafe {
				c.StaticSafe++
			}
			if pr.DynamicLeak {
				c.DynamicLeak++
			}
			switch {
			case pr.StaticSafe && pr.DynamicLeak:
				c.Unsound++
			case !pr.StaticSafe && pr.DynamicLeak:
				c.TruePositive++
			case !pr.StaticSafe && !pr.DynamicLeak:
				c.FalsePositive++
			}
		}
		seen := map[string]bool{}
		for _, k := range r.Frags {
			if !seen[k] {
				seen[k] = true
				s.KindTotal[k]++
				if r.PerPolicy["OoO"].DynamicLeak {
					s.KindLeakOoO[k]++
				}
			}
		}
	}
	return s
}

// String renders the census as an aligned table for CLI and experiment
// reports.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d programs, %d failed\n", s.Programs, s.Failed)
	fmt.Fprintf(&b, "%-20s %12s %12s %8s %8s %8s\n",
		"policy", "static-safe", "dynamic-leak", "TP", "FP", "UNSOUND")
	for _, c := range s.Policies {
		fmt.Fprintf(&b, "%-20s %12d %12d %8d %8d %8d\n",
			c.Policy, c.StaticSafe, c.DynamicLeak, c.TruePositive, c.FalsePositive, c.Unsound)
	}
	kinds := make([]string, 0, len(s.KindTotal))
	for k := range s.KindTotal {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(&b, "%-20s %12s %12s\n", "fragment kind", "programs", "leak@OoO")
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-20s %12d %12d\n", k, s.KindTotal[k], s.KindLeakOoO[k])
	}
	for _, f := range s.Failures {
		fmt.Fprintf(&b, "FAILURE: %s\n", f)
	}
	return b.String()
}
