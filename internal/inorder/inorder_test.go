package inorder

import (
	"fmt"
	"testing"

	"nda/internal/asm"
	"nda/internal/emu"
	"nda/internal/isa"
	"nda/internal/workload"
)

func runIO(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewFromProgram(p, DefaultParams())
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBasics(t *testing.T) {
	m := runIO(t, `
main:   li   t0, 0
        li   t1, 1
loop:   add  t0, t0, t1
        addi t1, t1, 1
        slti t2, t1, 101
        bne  t2, zero, loop
        halt
`)
	if got := m.Emu().Regs[isa.RegT0]; got != 5050 {
		t.Errorf("sum = %d", got)
	}
	if m.Cycles() == 0 || m.Stats().CPI() < 1 {
		t.Errorf("implausible CPI %.2f", m.Stats().CPI())
	}
}

func TestDifferentialAgainstEmu(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := workload.Random(seed, 150)
			golden := emu.New(prog)
			if err := golden.Run(5_000_000); err != nil {
				t.Fatal(err)
			}
			m := NewFromProgram(prog, DefaultParams())
			if err := m.Run(5_000_000); err != nil {
				t.Fatal(err)
			}
			if m.Retired() != golden.Retired {
				t.Errorf("retired = %d, want %d", m.Retired(), golden.Retired)
			}
			for i := range golden.Regs {
				if m.Emu().Regs[i] != golden.Regs[i] {
					t.Errorf("x%d = %#x, want %#x", i, m.Emu().Regs[i], golden.Regs[i])
				}
			}
		})
	}
}

func TestBlockingLoadsAreSlow(t *testing.T) {
	// Loads with L1 hits still block: CPI must be well above 1 on a
	// load-dominated kernel.
	m := runIO(t, `
        .data
        .org 0x100000
buf:    .space 4096
        .text
main:   li   s0, 0x100000
        li   s1, 256
loop:   ld   t0, (s0)
        ld   t1, 8(s0)
        ld   t2, 16(s0)
        addi s0, s0, 24
        addi s1, s1, -1
        bne  s1, zero, loop
        halt
`)
	if cpi := m.Stats().CPI(); cpi < 3 {
		t.Errorf("blocking-load CPI = %.2f, want >= 3", cpi)
	}
}

func TestILPAndMLPBounded(t *testing.T) {
	m := runIO(t, `
        .data
        .org 0x100000
buf:    .space 65536
        .text
main:   li   s0, 0x100000
        li   s1, 512
loop:   ld   t0, (s0)
        addi s0, s0, 128     # stride past a line: frequent misses
        addi s1, s1, -1
        bne  s1, zero, loop
        halt
`)
	if ilp := m.Stats().ILP(); ilp != 1.0 {
		t.Errorf("in-order ILP = %.3f, must be exactly 1.0", ilp)
	}
	if mlp := m.Stats().MLP(); mlp > 1.0 || mlp == 0 {
		t.Errorf("in-order MLP = %.3f, must be in (0, 1]", mlp)
	}
}

func TestResetStats(t *testing.T) {
	p := asm.MustAssemble(`
main:   li t0, 1000
loop:   addi t0, t0, -1
        bne t0, zero, loop
        halt
`)
	m := NewFromProgram(p, DefaultParams())
	if err := m.RunInsts(500); err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Committed >= m.Retired() {
		t.Error("reset must drop warm-up instructions from the counters")
	}
}

func TestFaultHandling(t *testing.T) {
	m := runIO(t, `
        .data
        .org 0x20000
        .kernel
secret: .word64 1
        .text
main:   la t0, handler
        wrmsr 0x0, t0
        la t1, secret
        ld t2, (t1)
        halt
handler: li t3, 55
        halt
`)
	if m.Emu().Regs[isa.Reg(28)] != 55 {
		t.Error("handler must run on the in-order core too")
	}
}

func TestRunawayGuard(t *testing.T) {
	p := asm.MustAssemble("main: j main")
	m := NewFromProgram(p, DefaultParams())
	if err := m.Run(1000); err == nil {
		t.Error("runaway program must be detected")
	}
}

func TestHaltedAndZeroStats(t *testing.T) {
	m := runIO(t, "main: halt")
	if !m.Halted() {
		t.Error("must be halted")
	}
	var s Stats
	if s.CPI() != 0 || s.MLP() != 0 || s.ILP() != 0 {
		t.Error("zero-value stats must report 0")
	}
}

func TestTakenBranchPenalty(t *testing.T) {
	// Equal instruction counts; the jumpy variant takes a jump every other
	// instruction and must pay the redirect penalty for each.
	straight := "main: li t0, 0\n"
	for i := 0; i < 100; i++ {
		straight += "addi t0, t0, 1\n"
	}
	straight += "halt\n"

	jumpy := "main: li t0, 0\n"
	for i := 0; i < 50; i++ {
		jumpy += fmt.Sprintf("addi t0, t0, 1\nj l%d\nnop\nl%d:\n", i, i)
	}
	jumpy += "halt\n"

	ms := runIO(t, straight)
	mj := runIO(t, jumpy)
	if ms.Emu().Regs[5] != 100 || mj.Emu().Regs[5] != 50 {
		t.Fatal("programs wrong")
	}
	perInstStraight := float64(ms.Cycles()) / float64(ms.Retired())
	perInstJumpy := float64(mj.Cycles()) / float64(mj.Retired())
	if perInstJumpy <= perInstStraight {
		t.Errorf("taken control flow must cost more per instruction: %.2f vs %.2f",
			perInstJumpy, perInstStraight)
	}
}
