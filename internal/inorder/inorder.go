// Package inorder implements the in-order baseline core: a single-issue,
// blocking-memory timing model in the role gem5's TimingSimpleCPU plays in
// the paper. It executes architecturally via the reference emulator and
// charges timing around each instruction:
//
//   - instruction fetch pays the I-cache round trip whenever fetch crosses
//     into a new cache line;
//   - every instruction pays its execution latency;
//   - loads and stores block for the full D-cache round trip;
//   - taken control transfers pay a small redirect penalty.
//
// There is no speculation of any kind, so the core is trivially immune to
// every speculative execution attack — the paper's "secure but slow" bound.
// Its MLP and ILP can never exceed 1.0 (§6.3).
package inorder

import (
	"errors"
	"fmt"

	"nda/internal/cache"
	"nda/internal/emu"
	"nda/internal/isa"
	"nda/internal/mem"
)

// Params configures the in-order core's latencies.
type Params struct {
	ALULatency      int
	MulLatency      int
	DivLatency      int
	MSRLatency      int
	RedirectPenalty int // taken branches/jumps/faults
}

// DefaultParams matches the OoO core's functional-unit latencies.
func DefaultParams() Params {
	return Params{
		ALULatency:      1,
		MulLatency:      3,
		DivLatency:      20,
		MSRLatency:      4,
		RedirectPenalty: 2,
	}
}

// Stats mirrors the subset of the OoO statistics the evaluation compares.
type Stats struct {
	Cycles    uint64
	Committed uint64

	MLPSum    uint64
	MLPCycles uint64
	ILPSum    uint64
	ILPCycles uint64
}

// CPI returns cycles per committed instruction.
func (s *Stats) CPI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Committed)
}

// MLP is at most 1.0: blocking memory allows one outstanding miss.
func (s *Stats) MLP() float64 {
	if s.MLPCycles == 0 {
		return 0
	}
	return float64(s.MLPSum) / float64(s.MLPCycles)
}

// ILP is at most 1.0: single issue.
func (s *Stats) ILP() float64 {
	if s.ILPCycles == 0 {
		return 0
	}
	return float64(s.ILPSum) / float64(s.ILPCycles)
}

// Machine is one in-order core instance.
type Machine struct {
	emu  *emu.Machine
	hier *cache.Hierarchy
	p    Params

	cycle         uint64
	lastFetchLine uint64
	stats         Stats

	// Cancel, when non-nil, aborts Run/RunInsts with ErrCancelled shortly
	// after the channel closes (polled every cancelStride instructions).
	Cancel <-chan struct{}
}

// New builds an in-order machine running prog on the given memory image.
func New(prog *isa.Program, m *mem.Memory, p Params) *Machine {
	return &Machine{
		emu:           emu.NewWithMemory(prog, m),
		hier:          cache.NewHierarchy(cache.DefaultHierarchyParams()),
		p:             p,
		lastFetchLine: ^uint64(0),
	}
}

// NewFromProgram builds a machine with a fresh memory initialized from the
// program's data segments.
func NewFromProgram(prog *isa.Program, p Params) *Machine {
	m := mem.New()
	emu.Load(m, prog)
	return New(prog, m, p)
}

// Emu exposes the underlying architectural machine.
func (m *Machine) Emu() *emu.Machine { return m.emu }

// Cycles returns the simulated cycle count.
func (m *Machine) Cycles() uint64 { return m.cycle }

// Retired returns committed instructions.
func (m *Machine) Retired() uint64 { return m.emu.Retired }

// Halted reports whether HALT executed.
func (m *Machine) Halted() bool { return m.emu.Halted }

// Stats returns counters accumulated since the last reset.
func (m *Machine) Stats() *Stats { return &m.stats }

// ResetStats zeroes the counters (end of warm-up).
func (m *Machine) ResetStats() {
	m.stats = Stats{}
	m.hier.ResetStats()
}

func (m *Machine) execLatency(op isa.Op) int {
	switch op {
	case isa.OpMul:
		return m.p.MulLatency
	case isa.OpDiv, isa.OpRem:
		return m.p.DivLatency
	case isa.OpRdmsr, isa.OpWrmsr:
		return m.p.MSRLatency
	default:
		return m.p.ALULatency
	}
}

// Step executes one instruction and advances the clock by its full cost.
func (m *Machine) Step() error {
	if m.emu.Halted {
		return nil
	}
	pc := m.emu.PC
	var fetchLat int
	lineMask := ^uint64(m.hier.LineBytes() - 1)
	if line := pc & lineMask; line != m.lastFetchLine {
		res := m.hier.Inst(pc)
		m.lastFetchLine = line
		fetchLat = res.Latency
	}

	if err := m.emu.Step(); err != nil {
		return err
	}
	info := m.emu.Last
	if info.Inst.Op == isa.OpRdcycle && info.Inst.Rd != isa.RegZero {
		// The functional emulator has no clock; substitute the real cycle
		// count so timing measurements (attack PoCs) are meaningful here.
		m.emu.Regs[info.Inst.Rd] = m.cycle
	}

	lat := uint64(fetchLat + m.execLatency(info.Inst.Op))
	if info.MemSize > 0 && !info.Faulted {
		res := m.hier.Data(info.MemAddr)
		lat += uint64(res.Latency)
		if res.OffChip() {
			// One blocking outstanding miss for its whole duration.
			m.stats.MLPSum += uint64(res.Latency)
			m.stats.MLPCycles += uint64(res.Latency)
		}
	}
	if info.Inst.Op == isa.OpClflush {
		m.hier.Flush(m.emu.Regs[info.Inst.Rs1] + uint64(info.Inst.Imm))
	}
	if info.Taken {
		lat += uint64(m.p.RedirectPenalty)
		m.lastFetchLine = ^uint64(0)
	}
	if lat == 0 {
		lat = 1
	}

	m.cycle += lat
	m.stats.Cycles += lat
	m.stats.Committed++
	// One instruction issues per issuing cycle: ILP is exactly 1.0, the
	// in-order bound the paper cites.
	m.stats.ILPSum++
	m.stats.ILPCycles++
	return nil
}

// Run executes until HALT or maxInsts instructions.
func (m *Machine) Run(maxInsts uint64) error {
	for step := uint64(0); !m.emu.Halted; step++ {
		if m.emu.Retired >= maxInsts {
			return fmt.Errorf("inorder: exceeded %d instructions without halting", maxInsts)
		}
		if m.cancelled(step) {
			return ErrCancelled
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunInsts executes at most n further instructions.
func (m *Machine) RunInsts(n uint64) error {
	target := m.emu.Retired + n
	for step := uint64(0); !m.emu.Halted && m.emu.Retired < target; step++ {
		if m.cancelled(step) {
			return ErrCancelled
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// ErrCancelled is returned by Run/RunInsts when the Cancel channel closes.
var ErrCancelled = errors.New("inorder: simulation cancelled")

// cancelStride is how many instructions may retire between Cancel polls.
const cancelStride = 1 << 12

// cancelled polls the Cancel channel at most once per cancelStride steps.
func (m *Machine) cancelled(step uint64) bool {
	if m.Cancel == nil || step&(cancelStride-1) != 0 {
		return false
	}
	select {
	case <-m.Cancel:
		return true
	default:
		return false
	}
}
