package inorder

import (
	"errors"
	"testing"

	"nda/internal/workload"
)

// TestCancelStopsRun mirrors the OoO core's contract: a closed Cancel
// channel stops the machine within one polling stride.
func TestCancelStopsRun(t *testing.T) {
	prog := workload.Random(99, 5_000)
	m := NewFromProgram(prog, DefaultParams())
	done := make(chan struct{})
	close(done)
	m.Cancel = done
	if err := m.Run(500_000_000); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if m.Cycles() > 4*cancelStride {
		t.Errorf("machine ran %d cycles after cancellation (stride %d)", m.Cycles(), cancelStride)
	}
}
