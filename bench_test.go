package nda

// One benchmark per table and figure of the paper's evaluation section,
// plus micro-benchmarks of the simulator substrates. Each Fig/Table bench
// regenerates (a reduced form of) the corresponding experiment per
// iteration and reports the experiment's headline number as a custom
// metric, so `go test -bench=. -benchmem` both exercises and summarizes
// the reproduction. cmd/ndabench and cmd/ndattack produce the full-size
// versions.

import (
	"context"
	"testing"

	"nda/internal/analysis"
	"nda/internal/asm"
	"nda/internal/attack"
	"nda/internal/checkpoint"
	"nda/internal/core"
	"nda/internal/emu"
	"nda/internal/harness"
	"nda/internal/inorder"
	"nda/internal/ooo"
	"nda/internal/serve"
	"nda/internal/store"
	"nda/internal/workload"
)

// benchConfig is a reduced sampling methodology sized for benchmarking.
func benchConfig() harness.Config {
	cfg := harness.Quick()
	cfg.WarmInsts = 3_000
	cfg.MeasureInsts = 3_000
	cfg.SkipInsts = 1_000
	cfg.Intervals = 3
	return cfg
}

func benchSpecs(b *testing.B, names ...string) []workload.Spec {
	b.Helper()
	var out []workload.Spec
	for _, n := range names {
		s, err := workload.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// --- Fig. 4: Spectre v1 leak series on insecure OoO ---

func BenchmarkFig4SpectreV1CacheBaseline(b *testing.B) {
	var margin float64
	for i := 0; i < b.N; i++ {
		out, err := attack.Run(attack.SpectreV1Cache, core.Baseline(), ooo.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		if !out.Leaked {
			b.Fatal("baseline must leak")
		}
		margin = out.Margin
	}
	b.ReportMetric(margin, "leak-margin-cycles")
}

func BenchmarkFig4SpectreV1BTBBaseline(b *testing.B) {
	var margin float64
	for i := 0; i < b.N; i++ {
		out, err := attack.Run(attack.SpectreV1BTB, core.Baseline(), ooo.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		if !out.Leaked {
			b.Fatal("baseline must leak via the BTB")
		}
		margin = out.Margin
	}
	b.ReportMetric(margin, "leak-margin-cycles")
}

// --- Fig. 5: BTB misprediction penalty ---

func BenchmarkFig5BTBMispredict(b *testing.B) {
	var penalty int64
	for i := 0; i < b.N; i++ {
		r, err := harness.MeasureFig5(ooo.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		penalty = r.Penalty()
	}
	b.ReportMetric(float64(penalty), "penalty-cycles")
}

// --- Fig. 8: the same attacks blocked under NDA ---

func BenchmarkFig8SpectreV1UnderNDA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, kind := range []attack.Kind{attack.SpectreV1Cache, attack.SpectreV1BTB} {
			out, err := attack.Run(kind, core.Permissive(), ooo.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			if out.Leaked {
				b.Fatalf("%s must be blocked", kind)
			}
		}
	}
}

// --- Tables 1 & 2 (security): the full attack x policy matrix ---

func BenchmarkTable2AttackMatrix(b *testing.B) {
	var matched float64
	for i := 0; i < b.N; i++ {
		cells, err := attack.Matrix(ooo.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		matched = 0
		for _, c := range cells {
			if c.Matches() {
				matched++
			}
		}
		if int(matched) != len(cells) {
			b.Fatalf("%d/%d matrix cells match the paper", int(matched), len(cells))
		}
	}
	b.ReportMetric(matched, "cells-matching-paper")
}

// --- Fig. 7 / Table 2 (performance): normalized CPI per policy ---

func BenchmarkFig7CPI(b *testing.B) {
	specs := benchSpecs(b, "gcc", "exchange2", "bwaves", "xalancbmk")
	pols := []core.Policy{core.Baseline(), core.Permissive(), core.FullProtection()}
	var permOverhead float64
	for i := 0; i < b.N; i++ {
		sw, err := harness.RunSweep(specs, pols, true, benchConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		permOverhead = sw.Overhead("Permissive")
	}
	b.ReportMetric(permOverhead, "perm-overhead-pct")
}

func BenchmarkTable2Overheads(b *testing.B) {
	specs := benchSpecs(b, "gcc", "mcf")
	var fullOverhead float64
	for i := 0; i < b.N; i++ {
		sw, err := harness.RunSweep(specs, []core.Policy{core.Baseline(), core.FullProtection()}, false, benchConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		fullOverhead = sw.Overhead("FullProtection")
	}
	b.ReportMetric(fullOverhead, "full-overhead-pct")
}

// --- Fig. 9a-d: breakdown, MLP, ILP, dispatch->issue ---

func BenchmarkFig9Aggregates(b *testing.B) {
	specs := benchSpecs(b, "gcc", "bwaves")
	var mlp float64
	for i := 0; i < b.N; i++ {
		sw, err := harness.RunSweep(specs, []core.Policy{core.Baseline(), core.Strict()}, false, benchConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		m := sw.Get("Strict", "bwaves")
		mlp = m.MLP
		_ = harness.RenderFig9a(sw)
		_ = harness.RenderFig9bcd(sw)
	}
	b.ReportMetric(mlp, "strict-bwaves-MLP")
}

// --- Fig. 9e: NDA logic latency sensitivity ---

func BenchmarkFig9eLogicLatency(b *testing.B) {
	var deltaPct float64
	for i := 0; i < b.N; i++ {
		rs, err := harness.RunFig9e("Permissive", []int{0, 1}, []string{"gcc"}, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		deltaPct = (rs[1].CPI/rs[0].CPI - 1) * 100
	}
	b.ReportMetric(deltaPct, "1cy-delay-cpi-pct")
}

// --- the 92-cell quick sweep: the repo's headline wall-clock number ---

// BenchmarkQuickSweep92 runs the standard 92-cell quick sweep (all 23 SPEC
// proxies under OoO, Permissive, and FullProtection, plus the in-order
// bound) exactly as ndaserve's smoke requests do. Its ns/op is the sweep's
// wall-clock; the BENCH_*.json trajectory pins it across PRs.
func BenchmarkQuickSweep92(b *testing.B) {
	specs := workload.SPEC()
	pols := []core.Policy{core.Baseline(), core.Permissive(), core.FullProtection()}
	cfg := harness.Quick()
	var cells float64
	for i := 0; i < b.N; i++ {
		sw, err := harness.RunSweep(specs, pols, true, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		cells = float64(len(specs)) * float64(len(pols)+1)
		_ = sw
	}
	b.ReportMetric(cells, "cells")
}

// --- persistent store: warm-restart latency ---

// BenchmarkStoreWarmRestart measures restart-to-warm latency for a
// store-backed ndaserve: each iteration re-opens the persistent store
// (recovery scan included), boots a fresh manager with a cold RAM cache,
// and replays a pre-populated 12-cell sweep entirely from the disk tier.
// ns/op is the full restart-and-replay cost with zero simulations; the
// BENCH_*.json trajectory pins it across PRs.
func BenchmarkStoreWarmRestart(b *testing.B) {
	dir := b.TempDir()
	req := serve.SweepRequest{
		Workloads: []string{"gcc", "mcf", "exchange2", "bwaves"},
		Policies:  []string{"OoO", "Permissive"},
		Sampling: serve.SamplingSpec{
			Quick: true, WarmInsts: 2_000, MeasureInsts: 2_000, SkipInsts: 1_000, Intervals: 3,
		},
	}
	const cells = 12 // 4 workloads x (2 policies + in-order)

	restart := func() (*serve.Manager, *store.Store) {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return serve.NewManager(serve.Config{QueueDepth: 4, JobWorkers: 1, Store: st}), st
	}
	sweep := func(m *serve.Manager) serve.Status {
		j, err := m.SubmitSweep(req)
		if err != nil {
			b.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		return j.Status()
	}
	stop := func(m *serve.Manager, st *store.Store) {
		if err := m.Shutdown(context.Background()); err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}

	// Populate the store once, outside the timed window (the "cold" boot).
	m, st := restart()
	if got := sweep(m); got.Tiers.Computed != cells {
		b.Fatalf("cold populate tiers = %+v, want %d computed", got.Tiers, cells)
	}
	stop(m, st)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, st := restart()
		if got := sweep(m); got.Tiers.Disk != cells || got.Tiers.Computed != 0 {
			b.Fatalf("warm replay tiers = %+v, want %d disk", got.Tiers, cells)
		}
		b.StopTimer()
		stop(m, st)
		b.StartTimer()
	}
	b.ReportMetric(cells, "cells-replayed")
}

// --- substrate micro-benchmarks ---

// BenchmarkOoOSimThroughput measures simulator speed in simulated
// instructions per wall second on a compute-bound workload. Core
// construction happens outside the timed window, so allocs/op covers the
// simulation hot path alone — the bench-trajectory CI job pins it at zero.
func BenchmarkOoOSimThroughput(b *testing.B) {
	spec, _ := workload.ByName("exchange2")
	prog := spec.Build(1 << 40)
	b.ResetTimer()
	total, cycles := 0.0, 0.0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := ooo.NewFromProgram(prog, core.Baseline(), ooo.DefaultParams())
		b.StartTimer()
		if err := c.RunInsts(50_000, 10_000_000); err != nil {
			b.Fatal(err)
		}
		total += float64(c.Retired())
		cycles += float64(c.Cycles())
	}
	b.ReportMetric(total/b.Elapsed().Seconds(), "sim-inst/s")
	b.ReportMetric(cycles/b.Elapsed().Seconds(), "sim-cycles/s")
}

func BenchmarkOoOSimThroughputMemoryBound(b *testing.B) {
	spec, _ := workload.ByName("mcf")
	prog := spec.Build(1 << 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := ooo.NewFromProgram(prog, core.Baseline(), ooo.DefaultParams())
		b.StartTimer()
		if err := c.RunInsts(20_000, 50_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInOrderSimThroughput(b *testing.B) {
	spec, _ := workload.ByName("exchange2")
	prog := spec.Build(1 << 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := inorder.NewFromProgram(prog, inorder.DefaultParams())
		if err := m.RunInsts(50_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmulator(b *testing.B) {
	spec, _ := workload.ByName("exchange2")
	prog := spec.Build(1 << 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := emu.New(prog)
		if err := m.RunN(100_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssembler(b *testing.B) {
	src := `
        .data
        .org 0x10000
buf:    .space 4096
tbl:    .word64 1, 2, 3, 4
        .text
main:   li   t0, 100
loop:   ld   t1, (s0)
        add  t2, t1, t0
        sd   t2, 8(s0)
        addi t0, t0, -1
        bne  t0, zero, loop
        call fn
        halt
fn:     ret
`
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomProgramGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.Random(int64(i), 200)
	}
}

// --- ablation benches (DESIGN.md design-decision checks) ---

// BenchmarkAblationBroadcastPorts quantifies the broadcast-port arbitration
// design point: NDA adds no ports, so a single-port machine shows how much
// the time-shifted broadcasts contend (paper §5.1).
func BenchmarkAblationBroadcastPorts(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	prog := spec.Build(1 << 40)
	var ratio float64
	for i := 0; i < b.N; i++ {
		cpis := map[int]float64{}
		for _, ports := range []int{8, 1} {
			p := ooo.DefaultParams()
			p.BroadcastPorts = ports
			c := ooo.NewFromProgram(prog, core.Strict(), p)
			if err := c.RunInsts(20_000, 50_000_000); err != nil {
				b.Fatal(err)
			}
			cpis[ports] = c.Stats().CPI()
		}
		ratio = cpis[1] / cpis[8]
	}
	b.ReportMetric(ratio, "1-port/8-port-CPI")
}

// BenchmarkAblationSpeculativeBTB quantifies the cost of disabling
// speculative BTB updates (which also closes the §3 covert channel).
func BenchmarkAblationSpeculativeBTB(b *testing.B) {
	spec, _ := workload.ByName("perlbench")
	prog := spec.Build(1 << 40)
	var ratio float64
	for i := 0; i < b.N; i++ {
		cpis := map[bool]float64{}
		for _, specUpd := range []bool{true, false} {
			p := ooo.DefaultParams()
			p.SpeculativeBTBUpdate = specUpd
			c := ooo.NewFromProgram(prog, core.Baseline(), p)
			if err := c.RunInsts(20_000, 50_000_000); err != nil {
				b.Fatal(err)
			}
			cpis[specUpd] = c.Stats().CPI()
		}
		ratio = cpis[false] / cpis[true]
	}
	b.ReportMetric(ratio, "nonspec/spec-BTB-CPI")
}

// BenchmarkCheckpointCapture measures the Lapidary-analogue snapshot cost.
func BenchmarkCheckpointCapture(b *testing.B) {
	spec, _ := workload.ByName("xz")
	prog := spec.Build(1 << 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checkpoint.Take(prog, 10_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointedMeasurement measures the full checkpoint-sampling
// path the harness's UseCheckpoints mode uses.
func BenchmarkCheckpointedMeasurement(b *testing.B) {
	spec, _ := workload.ByName("exchange2")
	cfg := benchConfig()
	cfg.UseCheckpoints = true
	for i := 0; i < b.N; i++ {
		if _, err := harness.MeasureOoOCheckpointed(spec, core.Baseline(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNdavetRepo measures one full ndavet run over this repository:
// load + typecheck, call-graph construction with per-function dataflow
// summaries, and all eight passes. It rides the BENCH_*.json trajectory
// so a regression in the analyzer's wall-clock or allocation footprint
// is as visible as one in the simulator.
func BenchmarkNdavetRepo(b *testing.B) {
	b.ReportAllocs()
	var open int
	for i := 0; i < b.N; i++ {
		m, err := analysis.Load(".")
		if err != nil {
			b.Fatal(err)
		}
		report, err := analysis.RunAll(m, analysis.Config{})
		if err != nil {
			b.Fatal(err)
		}
		open = len(report.Open())
	}
	b.ReportMetric(float64(open), "open-findings")
}
