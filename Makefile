# Single source of truth for build/verify commands: CI (.github/workflows/
# ci.yml) and local runs invoke exactly these targets.

GO ?= go

.PHONY: build test race bench-smoke bench-json bench-trajectory golden-identity serve-smoke dist-smoke store-smoke load-smoke fuzz-smoke vet ndavet contract-check lint fmt fmt-check ci

## build: compile every package and command
build:
	$(GO) build ./...

## test: tier-1 test suite
test:
	$(GO) test ./...

## race: full test suite under the race detector (proves the parallel
## sweep engine and attack matrix are race-clean)
race:
	$(GO) test -race ./...

## bench-smoke: run every benchmark exactly once under a coarse wall-clock
## budget — exercises each experiment driver per PR. All benchmarks live in
## the root package; scoping the run there skips compiling bench binaries
## for the other ~30 packages. The budget only guards against a hang or a
## catastrophic slowdown; fine-grained regressions are bench-trajectory's job.
BENCH_SMOKE_BUDGET ?= 600
bench-smoke:
	@start=$$(date +%s); \
	$(GO) test -run='^$$' -bench=. -benchtime=1x . || exit 1; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "bench-smoke: $${elapsed}s (budget $(BENCH_SMOKE_BUDGET)s)"; \
	[ "$$elapsed" -le "$(BENCH_SMOKE_BUDGET)" ] || { \
		echo "bench-smoke: exceeded $(BENCH_SMOKE_BUDGET)s budget" >&2; exit 1; }

## bench-json: run the benchmarks once and emit a BENCH_<n>.json trajectory
## point (next free index; see cmd/benchjson for the format)
bench-json:
	sh scripts/bench_json.sh

## bench-trajectory: regenerate the trajectory point and compare against the
## newest checked-in BENCH_<n>.json — hard-fails on any allocs/op or B/op
## regression; timing deltas are informational
bench-trajectory:
	sh scripts/bench_trajectory.sh

## golden-identity: regenerate the quick sweep and the attack matrix at two
## worker counts and byte-diff each against testdata/golden/
golden-identity:
	sh scripts/golden_identity.sh

## serve-smoke: black-box check of the ndaserve HTTP API — health, a quick
## sweep, byte-identical cache reuse, graceful SIGTERM drain
serve-smoke:
	sh scripts/serve_smoke.sh

## dist-smoke: black-box check of the distributed sweep fleet — a
## coordinator over two local workers, one SIGKILLed mid-sweep, with the
## merged result diffed byte-for-byte against a single-process golden run
dist-smoke:
	sh scripts/dist_smoke.sh

## store-smoke: black-box check of the persistent result store — a 92-cell
## sweep into -store-dir, SIGKILL, restart with -warm-from, and a
## byte-identical zero-simulation replay
store-smoke:
	sh scripts/store_smoke.sh

## load-smoke: black-box check of multi-tenant serving — FIFO vs fair-share
## byte identity on the same sweep, API-key auth, an ndaload warm-path run
## gated on p99/fairness/per-tenant completion, a long-tail + cancel
## contention phase over SSE, and a clean SIGTERM drain
load-smoke:
	sh scripts/load_smoke.sh

## fuzz-smoke: differential soundness fuzzing on a pinned seed range — the
## gadget analyzer's SAFE verdicts cross-checked against dynamic simulation
## on generated programs; any static-SAFE/dynamic-leak disagreement fails
fuzz-smoke:
	sh scripts/fuzz_smoke.sh

## vet: static analysis
vet:
	$(GO) vet ./...

## ndavet: the determinism/layering analyzer over the repo's own source —
## all eight passes — alloclint, ctxlint, detlint, errlint, globlint,
## layerlint, leaklint, locklint (alloclint, ctxlint, leaklint, and
## locklint are interprocedural, over the call graph); fails on any
## finding without a reasoned //ndavet:allow annotation
ndavet:
	$(GO) run ./cmd/ndavet

## contract-check: fail if the layer-contract table in README.md drifts
## from the one generated out of internal/analysis/layers.go
contract-check:
	sh scripts/layer_contract.sh

## lint: vet, the NDA gadget analyzer over every built-in program (fails
## if any static verdict deviates from Table 2 or a workload grows a
## chosen-code gadget), ndavet over the repo's own source, and the
## README layer-contract drift check
lint: vet ndavet contract-check
	$(GO) run ./cmd/ndalint -check

## fmt: rewrite sources with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file needs gofmt
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## ci: everything the CI pipeline runs, in one local command
ci: build test lint fmt-check race bench-smoke bench-trajectory golden-identity serve-smoke dist-smoke store-smoke load-smoke fuzz-smoke
