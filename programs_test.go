package nda_test

import (
	"os"
	"path/filepath"
	"testing"

	"nda"
	"nda/internal/isa"
)

// The sample programs under examples/programs are part of the public
// surface (the README points users at them); keep them assembling and
// producing their documented results.

func loadSample(t *testing.T, name string) *nda.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("examples", "programs", name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := nda.Assemble(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

func runSample(t *testing.T, prog *nda.Program, pol nda.Policy) *nda.Core {
	t.Helper()
	c := nda.NewCore(prog, pol, nda.DefaultParams())
	if err := c.Run(30_000_000); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSampleFib(t *testing.T) {
	c := runSample(t, loadSample(t, "fib.s"), nda.Baseline())
	if got := c.Reg(isa.RegA0); got != 832040 {
		t.Errorf("fib(30) = %d, want 832040", got)
	}
}

func TestSampleSieve(t *testing.T) {
	c := runSample(t, loadSample(t, "sieve.s"), nda.Baseline())
	if got := c.Reg(isa.RegA0); got != 168 {
		t.Errorf("primes below 1000 = %d, want 168", got)
	}
}

func TestSampleSpectreV1(t *testing.T) {
	prog := loadSample(t, "spectre_v1.s")

	// On the insecure baseline the in-assembly recover phase finds the
	// planted secret byte.
	c := runSample(t, prog, nda.Baseline())
	if got := c.Reg(isa.RegA0); got != 42 {
		t.Errorf("recovered byte on insecure OoO = %d, want 42", got)
	}

	// Under NDA the timing series is flat: the argmin lands elsewhere
	// (whatever guess happened to tie first — anything but a reliable 42).
	for _, pol := range []nda.Policy{nda.Permissive(), nda.FullProtection()} {
		c := runSample(t, prog, pol)
		if got := c.Reg(isa.RegA0); got == 42 {
			t.Errorf("secret recovered under %s", pol.Name)
		}
	}

	// The in-order core is immune as well.
	io := nda.NewInOrder(prog, nda.DefaultInOrderParams())
	if err := io.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if got := io.Emu().Regs[isa.RegA0]; got == 42 {
		t.Error("secret recovered on the in-order core")
	}
}

func TestSamplesDisassembleAndRoundTrip(t *testing.T) {
	for _, name := range []string{"fib.s", "sieve.s", "spectre_v1.s"} {
		prog := loadSample(t, name)
		// Emulator and OoO baseline must agree on every sample.
		c := runSample(t, prog, nda.Baseline())
		io := nda.NewInOrder(prog, nda.DefaultInOrderParams())
		if err := io.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		for i := isa.Reg(2); i < isa.NumGPR; i++ {
			// Skip ra (x1): call-depth timing differences do not change it
			// here, but rdcycle-derived values (s6..s9 in spectre_v1.s)
			// legitimately differ between timing models.
			if name == "spectre_v1.s" {
				break
			}
			if c.Reg(i) != io.Emu().Regs[i] {
				t.Errorf("%s: x%d differs between cores: %#x vs %#x",
					name, i, c.Reg(i), io.Emu().Regs[i])
			}
		}
	}
}
