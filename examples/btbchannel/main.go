// BTB covert channel demo (paper §3): cache-centric defenses are not
// enough. The attack transmits the secret through the branch target buffer
// — a structure InvisiSpec leaves visible — so it still works when all
// speculative cache fills are hidden. NDA blocks it at the source: the
// dependence chain feeding the indirect call never wakes.
package main

import (
	"fmt"
	"log"

	"nda"
)

func main() {
	params := nda.DefaultParams()

	// First, the channel's physics: the BTB misprediction penalty that
	// encodes the stolen bit (paper Fig. 5).
	fig5, err := nda.MeasureFig5(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(nda.RenderFig5(fig5))
	fmt.Println()

	fmt.Println("Spectre v1 transmitting through the BTB, secret byte = 42:")
	fmt.Println()
	for _, pol := range []nda.Policy{
		nda.Baseline(),          // leaks
		nda.InvisiSpecSpectre(), // STILL leaks: only the cache is protected
		nda.InvisiSpecFuture(),  // still leaks
		nda.Permissive(),        // blocked: NDA breaks the dependence chain
		nda.FullProtection(),    // blocked
	} {
		out, err := nda.RunAttack(nda.SpectreV1BTB, pol, params)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "BLOCKED"
		if out.Leaked {
			verdict = fmt.Sprintf("LEAKED (margin %.0f cycles at guess %d)", out.Margin, out.BestGuess)
		}
		fmt.Printf("  %-20s %s\n", pol.Name, verdict)
	}

	fmt.Println()
	fmt.Println("This is the paper's central argument: sealing covert channels one by")
	fmt.Println("one (caches today, the BTB tomorrow, port contention after that) is an")
	fmt.Println("arms race; NDA instead stops the secret from ever reaching a channel.")
}
