// Spectre demo: mount the classic Spectre v1 bounds-check-bypass attack
// (paper Listing 1) on the insecure out-of-order core and watch it recover
// the secret byte from the cache covert channel; then enable NDA policies
// and watch the same attack fail.
package main

import (
	"fmt"
	"log"

	"nda"
)

func main() {
	params := nda.DefaultParams()

	fmt.Println("Spectre v1 (cache covert channel), secret byte = 42")
	fmt.Println()
	for _, pol := range []nda.Policy{
		nda.Baseline(),
		nda.Permissive(),
		nda.FullProtection(),
		nda.InvisiSpecSpectre(),
	} {
		out, err := nda.RunAttack(nda.SpectreV1Cache, pol, params)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "BLOCKED  (series flat)"
		if out.Leaked {
			verdict = fmt.Sprintf("LEAKED   (guess %d is %.0f cycles faster than the rest)",
				out.BestGuess, out.Margin)
		}
		fmt.Printf("  %-20s %s\n", pol.Name, verdict)
	}

	// The timing series itself, around the secret, on the insecure core.
	out, err := nda.RunAttack(nda.SpectreV1Cache, nda.Baseline(), params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("probe access latency per guess on the insecure core (Fig. 4):")
	for g := 38; g <= 46; g++ {
		marker := ""
		if g == int(out.Secret) {
			marker = "   <-- the secret"
		}
		fmt.Printf("  guess %3d: %4.0f cycles%s\n", g, out.Series[g], marker)
	}
}
