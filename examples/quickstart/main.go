// Quickstart: assemble a small program, run it on the out-of-order core
// under two NDA policies and on the in-order baseline, and compare timing.
// Architectural results are identical everywhere — NDA changes only when
// speculative values may propagate, never what the program computes.
package main

import (
	"fmt"
	"log"

	"nda"
)

const program = `
        .data
        .org 0x10000
table:  .word64 3, 1, 4, 1, 5, 9, 2, 6
        .text
# Sum table[i] * i for i in 0..7, via a data-dependent loop.
main:   la   s0, table
        li   s1, 0           # i
        li   s2, 0           # sum
loop:   slli t0, s1, 3
        add  t0, t0, s0
        ld   t1, (t0)        # load table[i]
        mul  t2, t1, s1
        add  s2, s2, t2
        addi s1, s1, 1
        slti t3, s1, 8
        bne  t3, zero, loop
        halt
`

func main() {
	prog, err := nda.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	for _, pol := range []nda.Policy{nda.Baseline(), nda.FullProtection()} {
		c := nda.NewCore(prog, pol, nda.DefaultParams())
		if err := c.Run(1_000_000); err != nil {
			log.Fatal(err)
		}
		const s2 = 18 // register alias s2 = x18
		fmt.Printf("%-16s sum=%-4d %4d instructions in %4d cycles (CPI %.2f)\n",
			pol.Name, c.Reg(s2), c.Retired(), c.Cycles(), c.Stats().CPI())
	}

	io := nda.NewInOrder(prog, nda.DefaultInOrderParams())
	if err := io.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s sum=%-4d %4d instructions in %4d cycles (CPI %.2f)\n",
		"In-Order", io.Emu().Regs[18], io.Retired(), io.Cycles(), io.Stats().CPI())
}
