// Policysweep: measure a handful of benchmark proxies under every NDA
// policy and print a miniature of the paper's Fig. 7 — CPI normalized to
// the insecure out-of-order baseline, with the security/performance
// trade-off visible per policy.
package main

import (
	"fmt"
	"log"
	"os"

	"nda"
)

func main() {
	var benchmarks []nda.Benchmark
	names := []string{"mcf", "gcc", "exchange2", "bwaves", "xalancbmk"}
	if len(os.Args) > 1 {
		names = os.Args[1:]
	}
	for _, n := range names {
		b, err := nda.BenchmarkByName(n)
		if err != nil {
			log.Fatal(err)
		}
		benchmarks = append(benchmarks, b)
	}

	fmt.Printf("measuring %d benchmarks x %d configurations (a few minutes)...\n\n",
		len(benchmarks), len(nda.Policies())+1)
	sweep, err := nda.RunEvaluation(benchmarks, nda.Policies(), true,
		nda.QuickHarnessConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(nda.RenderFig7(sweep))
	fmt.Println()
	fmt.Print(nda.RenderTable2(sweep))
}
