# fib.s — compute fib(30) iteratively; result in a0.
#
#   go run ./cmd/ndasim -regs examples/programs/fib.s
        .text
main:   li   t0, 0           # fib(i)
        li   t1, 1           # fib(i+1)
        li   t2, 30          # counter
loop:   add  t3, t0, t1
        mv   t0, t1
        mv   t1, t3
        addi t2, t2, -1
        bne  t2, zero, loop
        mv   a0, t0
        halt
