# spectre_v1.s — a fully self-contained Spectre v1 proof-of-concept
# (paper Listing 1): bounds-check bypass, D-cache covert channel, and an
# in-assembly recover phase that leaves the recovered byte in a0.
#
#   go run ./cmd/ndasim -regs examples/programs/spectre_v1.s
#       -> a0 = 42 (the secret leaks on the insecure baseline)
#   go run ./cmd/ndasim -regs -policy FullProtection examples/programs/spectre_v1.s
#       -> a0 = 0 and a1 (margin) ~ 0: the series is flat, nothing leaked
        .data
        .org 0x100000
size:   .word64 16
        .align 64
array:  .space 48
secret: .byte 42             # out of bounds, same line as array
        .org 0x200000
probe:  .space 131072        # 256 x 512B probe entries
        .text
# --- train the bounds check: 16 in-bounds calls ---
main:   li   s1, 16
train:  li   a0, 0
        call victim
        addi s1, s1, -1
        bne  s1, zero, train
# --- prime: flush every probe entry ---
        li   s1, 0
        la   s2, probe
prime:  clflush (s2)
        addi s2, s2, 512
        addi s1, s1, 1
        slti s3, s1, 256
        bne  s3, zero, prime
# --- attack: flushed bounds + out-of-bounds index ---
        la   s2, size
        clflush (s2)
        li   a0, 48
        call victim
# --- recover: time each probe entry, track the fastest (argmin) ---
        li   s10, 0          # guess
        la   s11, probe
        li   a0, 0           # best guess
        li   s9, 1000000     # best time
recov:  rdcycle s8
        xor  s7, s8, s8
        add  s7, s7, s11
        lbu  s7, (s7)
        rdcycle s6
        sub  s6, s6, s8      # measured cycles for this guess
        bge  s6, s9, slower
        mv   s9, s6          # new fastest
        mv   a0, s10
slower: addi s11, s11, 512
        addi s10, s10, 1
        slti s7, s10, 256
        bne  s7, zero, recov
        halt

# victim(a0 = x): if (x < size) { t = probe[array[x] * 512]; }
victim: la   t0, size
        ld   t1, (t0)
        bge  a0, t1, vend
        la   t2, array
        add  t2, t2, a0
        lbu  t3, (t2)
        slli t3, t3, 9
        la   t4, probe
        add  t4, t4, t3
        lbu  t5, (t4)
vend:   ret
