# sieve.s — count primes below 1000 with the sieve of Eratosthenes;
# result in a0. Exercises loads, stores, nested loops, and branches.
#
#   go run ./cmd/ndasim -regs examples/programs/sieve.s
        .data
        .org 0x100000
flags:  .space 1000          # flags[i] != 0 means composite
        .text
main:   la   s0, flags
        li   s1, 2           # i
outer:  add  t0, s0, s1
        lbu  t1, (t0)
        bne  t1, zero, next  # already marked composite
        # mark multiples of i
        add  t2, s1, s1      # j = 2i
        li   t5, 1000
inner:  bge  t2, t5, next
        add  t3, s0, t2
        li   t4, 1
        sb   t4, (t3)
        add  t2, t2, s1
        j    inner
next:   addi s1, s1, 1
        slti t6, s1, 1000
        bne  t6, zero, outer
        # count zeros in flags[2..999]
        li   a0, 0
        li   s1, 2
count:  add  t0, s0, s1
        lbu  t1, (t0)
        bne  t1, zero, skip
        addi a0, a0, 1
skip:   addi s1, s1, 1
        slti t6, s1, 1000
        bne  t6, zero, count
        halt
